//! The QUIC connection state machine (sans-IO).
//!
//! Drives a full RFC 9000/9001/9002 1-RTT handshake and data transfer over
//! the simulated TLS stack, with the two server behaviours the paper
//! compares — wait-for-certificate and instant ACK — plus every client
//! quirk the paper traces performance differences to.
//!
//! The API is poll-based:
//! * [`Connection::handle_datagram`] — feed a received UDP payload;
//! * [`Connection::poll_transmit`] — drain outgoing UDP payloads;
//! * [`Connection::poll_timeout`] / [`Connection::handle_timeout`] — timer
//!   management (loss detection, PTO, delayed ACKs);
//! * [`Connection::poll_event`] — application-facing events.

use std::collections::VecDeque;

use bytes::Bytes;
use rq_qlog::{EventData, EventLog, FrameSummary, SpaceName};
use rq_recovery::{
    persistent_congestion_duration, CcState, CongestionControl, PtoState, RttEstimator, RttVariant,
    SentPacket, SentTracker,
};
use rq_sim::{SimDuration, SimRng, SimTime};
use rq_tls::{
    initial_keys, seal_tag, verify_tag, ClientConfig as TlsClientConfig, KeySide, Level, LevelKeys,
    ServerConfig as TlsServerConfig, TlsEvent, TlsSession,
};
use rq_wire::{
    AckFrame, ConnectionId, Frame, Header, PacketNumberSpace, PacketType, PlainPacket,
    MIN_INITIAL_DATAGRAM,
};

use crate::config::{AckDelayReport, EndpointConfig, ProbePolicy, ServerAckMode};
use crate::space::{retx_content_of, RetxContent, SpaceState};
use crate::streams::StreamSet;

/// Maximum UDP payload we produce (QUIC minimum-MTU safe value).
pub const MAX_DATAGRAM_SIZE: usize = 1200;

/// Close code: the client abandoned a handshake past its give-up budget.
pub const ERROR_GIVE_UP: u64 = 0x6109_E0;
/// Close code: the peer signalled it lost this connection's state
/// (stateless-reset-style, e.g. after a server crash).
pub const ERROR_STATELESS_RESET: u64 = 0x57A7_E1;
/// Close code: the server refused the connection because it was
/// overloaded (the `CloseWithBackoff` admission policy).
pub const ERROR_SERVER_BUSY: u64 = 0xB0_5E;

/// Endpoint role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Client endpoint.
    Client,
    /// Server endpoint.
    Server,
}

/// Stream tag of the CID-derivation coordinate space: every connection ID
/// is `derive(cid_seed, [CID_STREAM, kind, seq])`, a pure function of its
/// coordinates, so rotated CIDs from one seed can never collide the way
/// the old XOR-of-constants scheme could.
const CID_STREAM: u64 = 0xC1D_0;
/// Stream tag for PATH_CHALLENGE probe data.
const CHALLENGE_STREAM: u64 = 0xCA_11E;

/// CID kind: a client's locally chosen CIDs (seq 0 = handshake CID).
pub const CID_KIND_CLIENT: u64 = 0;
/// CID kind: the client's original destination CID (Initial keys).
pub const CID_KIND_ORIGINAL_DCID: u64 = 1;
/// CID kind: a server's locally chosen CIDs (seq 0 = handshake CID).
pub const CID_KIND_SERVER: u64 = 2;
/// CID kind: the CID a stateless Retry hands the client.
pub const CID_KIND_RETRY: u64 = 3;

/// Derives the 8-byte connection ID at `(kind, seq)` for `cid_seed`.
/// Drivers use this to predict every CID a connection will announce
/// (e.g. to index migrated clients by rotated CID without extra state).
pub fn derived_cid(cid_seed: u64, kind: u64, seq: u64) -> ConnectionId {
    let mut rng = SimRng::derive(cid_seed, &[CID_STREAM, kind, seq]);
    ConnectionId::from_u64(rng.next_u64())
}

/// Path validation gives up after this many challenge retransmissions.
const PATH_CHALLENGE_MAX_RETRIES: u32 = 3;

/// Per-path accounting and validation state (RFC 9000 §9). The implicit
/// handshake path (id 0) is validated by the handshake itself and never
/// appears here; entries exist only for paths seen after a migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathState {
    /// Path id (the simulator's link path).
    pub id: u64,
    /// Bytes sent while this path was active.
    pub bytes_sent: usize,
    /// Bytes received on this path.
    pub bytes_received: usize,
    /// PATH_RESPONSE received: the peer is reachable on this path.
    pub validated: bool,
    /// Validation abandoned after exhausting challenge retries.
    pub abandoned: bool,
}

/// An in-flight PATH_CHALLENGE (one at a time; a new migration replaces
/// any outstanding probe).
#[derive(Debug, Clone)]
struct PathChallengeState {
    /// Random probe data the response must echo (RFC 9000 §8.2.1).
    data: u64,
    /// Path being validated.
    path: u64,
    /// When the current attempt times out.
    deadline: SimTime,
    /// Retransmissions so far.
    retries: u32,
    /// The frame for the current attempt has not left yet.
    needs_send: bool,
}

/// Application-visible connection events.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnEvent {
    /// Handshake completed at this endpoint.
    HandshakeComplete,
    /// Handshake confirmed (client: HANDSHAKE_DONE received).
    HandshakeConfirmed,
    /// Server: certificate required — call
    /// [`Connection::certificate_ready`] after the store round trip (Δt).
    CertificateNeeded,
    /// Stream data delivered in order.
    StreamData {
        /// Stream ID.
        id: u64,
        /// Newly contiguous bytes.
        data: Vec<u8>,
        /// Stream finished.
        fin: bool,
    },
    /// Client: a NewSessionTicket arrived — cache it to resume later.
    TicketReceived(rq_tls::SessionTicket),
    /// Connection closed (peer close, local error, or quirk abort).
    Closed {
        /// Error code.
        error_code: u64,
        /// Reason phrase.
        reason: String,
    },
}

/// Per-connection protocol counters. Plain integers on the hot path
/// (the `ScanShard` pattern — a map lookup per packet would not be
/// zero-cost), exported into an [`rq_obs::Registry`] under a
/// caller-chosen prefix at snapshot time. Field-wise summable, so
/// merged snapshots are independent of worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Packets protected and handed to the send path, per packet number
    /// space (Initial, Handshake, Application — 0-RTT counts as App).
    pub packets_sealed: [u64; 3],
    /// Packets accepted after unprotection and dedup, per space.
    pub packets_opened: [u64; 3],
    /// Packets declared lost by the loss detector.
    pub packets_lost: u64,
    /// Congestion-controller phase transitions, including
    /// persistent-congestion collapses.
    pub cc_transitions: u64,
    /// PTO timer expirations.
    pub pto_expirations: u64,
    /// Connection ID rotations (migration adopting a spare peer CID).
    pub cid_rotations: u64,
    /// Times the send path stalled on the anti-amplification limit
    /// while holding data it wanted to send.
    pub amp_stalls: u64,
}

impl ConnStats {
    /// Field-wise sum; [`ConnStats::default`] is the identity.
    pub fn merge(&mut self, other: &ConnStats) {
        for i in 0..3 {
            self.packets_sealed[i] += other.packets_sealed[i];
            self.packets_opened[i] += other.packets_opened[i];
        }
        self.packets_lost += other.packets_lost;
        self.cc_transitions += other.cc_transitions;
        self.pto_expirations += other.pto_expirations;
        self.cid_rotations += other.cid_rotations;
        self.amp_stalls += other.amp_stalls;
    }

    /// Exports every counter into `reg` under `prefix` (no separator is
    /// added — pass e.g. `"quic/client/"`).
    pub fn export(&self, prefix: &str, reg: &mut rq_obs::Registry) {
        const SPACES: [&str; 3] = ["initial", "handshake", "app"];
        for (i, space) in SPACES.iter().enumerate() {
            reg.add(
                &format!("{prefix}packets_sealed/{space}"),
                self.packets_sealed[i],
            );
            reg.add(
                &format!("{prefix}packets_opened/{space}"),
                self.packets_opened[i],
            );
        }
        reg.add(&format!("{prefix}packets_lost"), self.packets_lost);
        reg.add(&format!("{prefix}cc_transitions"), self.cc_transitions);
        reg.add(&format!("{prefix}pto_expirations"), self.pto_expirations);
        reg.add(&format!("{prefix}cid_rotations"), self.cid_rotations);
        reg.add(&format!("{prefix}amp_stalls"), self.amp_stalls);
    }
}

/// A fully sans-IO QUIC connection.
pub struct Connection {
    role: Role,
    cfg: EndpointConfig,
    tls: TlsSession,
    /// Per-space protocol state (Initial, Handshake, Application).
    spaces: [SpaceState; 3],
    /// Per-space sent-packet trackers.
    trackers: [SentTracker; 3],
    rtt: RttEstimator,
    pto: PtoState,
    cc: Box<dyn CongestionControl>,
    /// Last controller phase reported to qlog (transitions only).
    last_cc_state: CcState,
    /// Send time of the latest acked ack-eliciting packet: losses of
    /// packets sent before it cannot establish persistent congestion
    /// (RFC 9002 §7.6.2 — the span must contain no acked packet).
    largest_acked_sent_time: Option<SimTime>,
    keys: [Option<LevelKeys>; 3],
    /// Our connection ID (the peer's DCID for short headers to us).
    local_cid: ConnectionId,
    /// The peer's current connection ID (our DCID).
    peer_cid: ConnectionId,
    /// The client's original DCID (Initial key derivation).
    original_dcid: ConnectionId,
    /// Anti-amplification accounting (server).
    bytes_received: usize,
    bytes_sent: usize,
    address_validated: bool,
    /// Datagrams fully assembled and ready to go.
    ready_datagrams: VecDeque<Vec<u8>>,
    /// Buffered packets for which keys are not yet available.
    pending_packets: Vec<(PlainPacket, [u8; 16], usize)>,
    events: VecDeque<ConnEvent>,
    /// qlog event log for this endpoint.
    pub log: EventLog,
    handshake_complete: bool,
    handshake_confirmed: bool,
    /// HANDSHAKE_DONE owed to the peer (server).
    handshake_done_pending: bool,
    /// Client: an instant ACK (pure-ACK Initial) was received.
    iack_received: bool,
    /// PNs of PING probes we sent in the Initial space (quiche quirk).
    initial_ping_pns: Vec<u64>,
    /// Number of datagrams we dropped ourselves (quiche quirk bookkeeping).
    self_dropped: usize,
    /// Ping-reply drop budget remaining (quiche quirk).
    ping_reply_drop_budget: usize,
    /// Copy of the ClientHello crypto bytes for probe retransmission.
    initial_crypto_copy: Vec<u8>,
    /// Whether the client's second flight was already emitted.
    flight2_sent: bool,
    /// Streams.
    pub streams: StreamSet,
    /// Time of last sent or received datagram (deadlock-PTO basis).
    last_activity: Option<SimTime>,
    /// Time of the last ack-eliciting *send* (base for the quirky
    /// "default PTO only" deadlock probe of mvfst/picoquic).
    last_eliciting_send: Option<SimTime>,
    /// Client: when the first datagram left (base of the `give_up_after`
    /// handshake deadline).
    first_send_at: Option<SimTime>,
    /// Close state.
    closed: bool,
    close_frame_pending: Option<(u64, String)>,
    /// Amplification-blocked diagnostic latch (one event per stall).
    amp_blocked_logged: bool,
    /// Retry support: token we must echo in Initials (client).
    token: Vec<u8>,
    /// Server: require a Retry round trip before accepting.
    pub use_retry: bool,
    retry_sent: bool,
    /// Server in WFC mode: the request handler is blocked on the
    /// certificate store; nothing is sent until `certificate_ready`
    /// (Figure 1a — the sleep covers the whole response path).
    waiting_for_cert: bool,
    /// Received packets that newly acknowledged at least one of our
    /// packets ("packets with new ACKs", paper Figure 11).
    new_ack_packets: usize,
    /// A Handshake packet arrived before its keys existed (the ServerHello
    /// was lost): the out-of-order first flight that trips quiche's
    /// duplicate-CID-retirement bug under IACK (§4.2 / App. F).
    buffered_hs_before_keys: bool,
    /// 0-RTT packet protection: the client derives these from its ticket
    /// before the first flight, the server after validating the ticket.
    early_keys: Option<LevelKeys>,
    /// Early data was rejected (or the PSK offer failed): the client
    /// requeues 0-RTT content as 1-RTT, the server drops 0-RTT packets.
    early_rejected: bool,
    /// Seed all locally derived CIDs and challenge data come from.
    cid_seed: u64,
    /// Spare CIDs the peer announced via NEW_CONNECTION_ID: (seq, cid),
    /// not yet rotated to.
    peer_cid_pool: Vec<(u64, ConnectionId)>,
    /// Sequence number of the peer CID currently in `peer_cid`.
    peer_cid_seq: u64,
    /// NEW_CONNECTION_ID announcements owed to the peer
    /// (seq, retire_prior_to, cid bytes).
    pending_new_cids: Vec<(u64, u64, Vec<u8>)>,
    /// RETIRE_CONNECTION_ID frames owed to the peer.
    pending_retire_cids: Vec<u64>,
    /// PATH_RESPONSE data owed (echo of a received PATH_CHALLENGE).
    pending_path_response: Option<u64>,
    /// Outstanding path validation, if any.
    path_challenge: Option<PathChallengeState>,
    /// Per-path accounting; empty until a non-default path appears.
    paths: Vec<PathState>,
    /// Path id of the currently active path (0 = handshake path).
    active_path: u64,
    /// Aggregated protocol counters (see [`ConnStats`]).
    stats: ConnStats,
    /// Time of the last periodic `metrics_sampled` emission.
    last_metrics_sample: Option<SimTime>,
}

impl Connection {
    /// Creates a client connection. `cid_seed` individualizes connection
    /// IDs; `rtt_quirk_applies` resolves the probabilistic go-x-net quirk
    /// for this run (decided by the testbed's seeded RNG).
    pub fn client(cfg: EndpointConfig, cid_seed: u64, rtt_quirk_applies: bool) -> Self {
        let local_cid = derived_cid(cid_seed, CID_KIND_CLIENT, 0);
        let original_dcid = derived_cid(cid_seed, CID_KIND_ORIGINAL_DCID, 0);
        let mut rtt = RttEstimator::new(cfg.max_ack_delay);
        if cfg.quirks.aioquic_rttvar {
            rtt = rtt.with_variant(RttVariant::AioquicOrder);
        }
        if rtt_quirk_applies {
            if let Some(pre) = cfg.quirks.buggy_rtt_preinit {
                rtt = rtt.with_buggy_preinit(pre);
            }
        }
        let mut tls = TlsSession::client(TlsClientConfig {
            ticket: cfg.session_ticket.clone(),
            early_data: cfg.enable_early_data && cfg.session_ticket.is_some(),
            ..TlsClientConfig::full()
        });
        tls.start();
        let early = tls.early_keys().cloned();
        let initial = initial_keys(original_dcid.as_slice());
        let ping_budget = if cfg.quirks.drop_ping_reply_coalesced {
            1
        } else {
            0
        };
        let mut conn = Connection {
            role: Role::Client,
            pto: PtoState::new(cfg.default_pto),
            cc: cfg.cc_algorithm.build(),
            last_cc_state: CcState::SlowStart,
            largest_acked_sent_time: None,
            tls,
            spaces: Default::default(),
            trackers: Default::default(),
            rtt,
            keys: [Some(initial), None, None],
            local_cid,
            peer_cid: original_dcid,
            original_dcid,
            bytes_received: 0,
            bytes_sent: 0,
            address_validated: true, // clients are never amplification-limited
            ready_datagrams: VecDeque::new(),
            pending_packets: Vec::new(),
            events: VecDeque::new(),
            log: EventLog::new(format!("client:{}", cfg.name)),
            handshake_complete: false,
            handshake_confirmed: false,
            handshake_done_pending: false,
            iack_received: false,
            initial_ping_pns: Vec::new(),
            self_dropped: 0,
            ping_reply_drop_budget: ping_budget,
            initial_crypto_copy: Vec::new(),
            flight2_sent: false,
            streams: StreamSet::new(cfg.initial_max_data, cfg.initial_max_stream_data),
            last_activity: None,
            last_eliciting_send: None,
            first_send_at: None,
            closed: false,
            close_frame_pending: None,
            amp_blocked_logged: false,
            token: Vec::new(),
            use_retry: false,
            retry_sent: false,
            waiting_for_cert: false,
            new_ack_packets: 0,
            buffered_hs_before_keys: false,
            early_keys: early,
            early_rejected: false,
            cid_seed,
            peer_cid_pool: Vec::new(),
            peer_cid_seq: 0,
            pending_new_cids: Vec::new(),
            pending_retire_cids: Vec::new(),
            pending_path_response: None,
            path_challenge: None,
            paths: Vec::new(),
            active_path: 0,
            stats: ConnStats::default(),
            last_metrics_sample: None,
            cfg,
        };
        // Queue the ClientHello into the Initial crypto stream.
        if let Some(ch) = conn.tls.take_output(Level::Initial) {
            conn.initial_crypto_copy = ch.to_vec();
            conn.spaces[0].crypto.queue_tx(&ch);
        }
        conn
    }

    /// Creates a server connection for a new 4-tuple whose first datagram
    /// carried `original_dcid` (Initial key derivation input).
    pub fn server(cfg: EndpointConfig, cid_seed: u64, original_dcid: ConnectionId) -> Self {
        let local_cid = derived_cid(cid_seed, CID_KIND_SERVER, 0);
        let tls = TlsSession::server(TlsServerConfig {
            cert_len: cfg.cert_len,
            random: [0x22; 32],
            cert_preprovisioned: false,
            resumption: cfg.resumption,
            ticket_key: cfg.ticket_key,
            accept_ticket_keys: cfg.accept_ticket_keys.clone(),
        });
        let initial = initial_keys(original_dcid.as_slice());
        Connection {
            role: Role::Server,
            pto: PtoState::new(cfg.default_pto),
            cc: cfg.cc_algorithm.build(),
            last_cc_state: CcState::SlowStart,
            largest_acked_sent_time: None,
            tls,
            spaces: Default::default(),
            trackers: Default::default(),
            rtt: RttEstimator::new(cfg.max_ack_delay),
            keys: [Some(initial), None, None],
            local_cid,
            peer_cid: ConnectionId::EMPTY, // learned from the client's SCID
            original_dcid,
            bytes_received: 0,
            bytes_sent: 0,
            address_validated: false,
            ready_datagrams: VecDeque::new(),
            pending_packets: Vec::new(),
            events: VecDeque::new(),
            log: EventLog::new(format!("server:{}", cfg.name)),
            handshake_complete: false,
            handshake_confirmed: false,
            handshake_done_pending: false,
            iack_received: false,
            initial_ping_pns: Vec::new(),
            self_dropped: 0,
            ping_reply_drop_budget: 0,
            initial_crypto_copy: Vec::new(),
            flight2_sent: true, // server has no client flight 2
            streams: StreamSet::new(cfg.initial_max_data, cfg.initial_max_stream_data),
            last_activity: None,
            last_eliciting_send: None,
            first_send_at: None,
            closed: false,
            close_frame_pending: None,
            amp_blocked_logged: false,
            token: Vec::new(),
            use_retry: false,
            retry_sent: false,
            waiting_for_cert: false,
            new_ack_packets: 0,
            buffered_hs_before_keys: false,
            early_keys: None,
            early_rejected: false,
            cid_seed,
            peer_cid_pool: Vec::new(),
            peer_cid_seq: 0,
            pending_new_cids: Vec::new(),
            pending_retire_cids: Vec::new(),
            pending_path_response: None,
            path_challenge: None,
            paths: Vec::new(),
            active_path: 0,
            stats: ConnStats::default(),
            last_metrics_sample: None,
            cfg,
        }
    }

    /// Snapshot of this connection's protocol counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// Endpoint role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Our connection ID (needed by drivers to route datagrams).
    pub fn local_cid(&self) -> ConnectionId {
        self.local_cid
    }

    /// The client's original destination connection ID (Initial keys).
    pub fn original_dcid(&self) -> ConnectionId {
        self.original_dcid
    }

    /// Whether 1-RTT (application) keys are installed — the server can
    /// send 1-RTT data (e.g. the HTTP/3 SETTINGS control stream) as soon
    /// as this is true, before the handshake completes (Figure 3).
    pub fn app_keys_available(&self) -> bool {
        self.keys[2].is_some()
    }

    /// Whether the handshake is confirmed at this endpoint.
    pub fn is_confirmed(&self) -> bool {
        self.handshake_confirmed
    }

    /// Number of received packets that newly acknowledged at least one
    /// sent packet (the "packets with new ACKs" of Figure 11).
    pub fn new_ack_packets(&self) -> usize {
        self.new_ack_packets
    }

    /// Whether the connection is closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether the handshake completed at this endpoint.
    pub fn is_established(&self) -> bool {
        self.handshake_complete
    }

    /// Whether this connection ran the abbreviated (session-resumption)
    /// handshake.
    pub fn is_resumed(&self) -> bool {
        self.tls.is_resumed()
    }

    /// Outcome of a 0-RTT early-data offer (`None`: never offered or
    /// not yet decided).
    pub fn early_data_accepted(&self) -> Option<bool> {
        self.tls.early_data_accepted()
    }

    /// Whether 0-RTT keys are installed (client: before the handshake;
    /// server: after accepting the offered early data).
    pub fn early_keys_available(&self) -> bool {
        self.early_keys.is_some()
    }

    /// RTT estimator (read-only view for tests and analyses).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// PTO backoff state (read-only view).
    pub fn pto_state(&self) -> &PtoState {
        &self.pto
    }

    /// Bytes of amplification budget remaining (servers before address
    /// validation); `usize::MAX` once validated. After a migration the
    /// limit applies *per path*: an unvalidated new path is capped at 3×
    /// the bytes received on it, exactly like a fresh Initial
    /// (RFC 9000 §9.3.1), regardless of the old path's validation.
    pub fn amplification_budget(&self) -> usize {
        if self.role == Role::Server && self.active_path != 0 {
            if let Some(p) = self.paths.iter().find(|p| p.id == self.active_path) {
                if !p.validated {
                    return (3 * p.bytes_received).saturating_sub(p.bytes_sent);
                }
            }
        }
        if self.address_validated {
            usize::MAX
        } else {
            (3 * self.bytes_received).saturating_sub(self.bytes_sent)
        }
    }

    /// Path id of the currently active path (0 = handshake path).
    pub fn active_path(&self) -> u64 {
        self.active_path
    }

    /// Per-path accounting entries (non-default paths only).
    pub fn paths(&self) -> &[PathState] {
        &self.paths
    }

    /// Accounting entry for one path, if it ever carried traffic.
    pub fn path_state(&self, id: u64) -> Option<&PathState> {
        self.paths.iter().find(|p| p.id == id)
    }

    /// Whether a PATH_CHALLENGE is still awaiting its response.
    pub fn path_validation_pending(&self) -> bool {
        self.path_challenge.is_some()
    }

    /// Spare CIDs the peer has announced and we have not rotated to yet.
    pub fn spare_peer_cids(&self) -> usize {
        self.peer_cid_pool.len()
    }

    fn ensure_path(&mut self, id: u64) -> &mut PathState {
        if let Some(i) = self.paths.iter().position(|p| p.id == id) {
            return &mut self.paths[i];
        }
        self.paths.push(PathState {
            id,
            bytes_sent: 0,
            bytes_received: 0,
            validated: false,
            abandoned: false,
        });
        self.paths.last_mut().unwrap()
    }

    // ------------------------------------------------------------------
    // Connection migration (RFC 9000 §9)
    // ------------------------------------------------------------------

    /// Client API: deliberately migrate to `path`. Rotates the DCID to a
    /// spare CID from the peer's pool (retiring the old one so packets on
    /// the two paths are not linkable), resets RTT and congestion state
    /// for the new path (§9.4), and starts PATH_CHALLENGE validation.
    /// No-ops before the handshake completes or when already on `path`.
    pub fn migrate(&mut self, now: SimTime, path: u64) {
        if self.closed || !self.handshake_complete || path == self.active_path {
            return;
        }
        self.active_path = path;
        let already_validated = self.ensure_path(path).validated;
        self.log.push(
            now,
            EventData::MigrationStarted {
                path,
                deliberate: true,
            },
        );
        // Rotate to an unused peer-issued CID (RFC 9000 §9.5).
        if let Some(pos) = self
            .peer_cid_pool
            .iter()
            .position(|(s, _)| *s > self.peer_cid_seq)
        {
            let (seq, cid) = self.peer_cid_pool.remove(pos);
            self.pending_retire_cids.push(self.peer_cid_seq);
            self.peer_cid = cid;
            self.peer_cid_seq = seq;
            self.stats.cid_rotations += 1;
        }
        if !already_validated {
            self.reset_path_metrics();
            self.start_path_challenge(now, path);
        }
    }

    /// Server side: the peer's packets started arriving on a new path —
    /// a NAT rebind or a migration we were not told about. Adopt the
    /// path, cap it at 3× until validated, and probe it (§9.3).
    fn on_peer_path_switch(&mut self, now: SimTime, path: u64) {
        self.active_path = path;
        let already_validated = path == 0 || self.ensure_path(path).validated;
        self.log.push(
            now,
            EventData::MigrationStarted {
                path,
                deliberate: false,
            },
        );
        if !already_validated {
            self.reset_path_metrics();
            self.start_path_challenge(now, path);
        }
    }

    /// RFC 9000 §9.4: RTT and congestion state do not carry over to a new
    /// path; both restart from initial values.
    fn reset_path_metrics(&mut self) {
        let mut rtt = RttEstimator::new(self.cfg.max_ack_delay);
        if self.cfg.quirks.aioquic_rttvar {
            rtt = rtt.with_variant(RttVariant::AioquicOrder);
        }
        self.rtt = rtt;
        self.cc = self.cfg.cc_algorithm.build();
        self.last_cc_state = CcState::SlowStart;
    }

    fn start_path_challenge(&mut self, now: SimTime, path: u64) {
        let mut rng = SimRng::derive(self.cid_seed, &[CHALLENGE_STREAM, path, 0]);
        self.path_challenge = Some(PathChallengeState {
            data: rng.next_u64(),
            path,
            deadline: now + self.challenge_timeout(0),
            retries: 0,
            needs_send: true,
        });
    }

    /// Challenge timeout: default PTO with exponential backoff (the path
    /// has no RTT samples yet, so the pre-sample PTO is the right scale).
    fn challenge_timeout(&self, retries: u32) -> SimDuration {
        self.cfg.default_pto.mul(1u64 << retries.min(6))
    }

    /// An outstanding PATH_CHALLENGE timed out: retransmit with fresh
    /// probe data, or abandon the path after exhausting retries (§8.2.4).
    fn on_path_challenge_timeout(&mut self, now: SimTime) {
        let Some(mut ch) = self.path_challenge.take() else {
            return;
        };
        if ch.retries >= PATH_CHALLENGE_MAX_RETRIES {
            let path = ch.path;
            self.ensure_path(path).abandoned = true;
            self.log.push(now, EventData::PathAbandoned { path });
            return;
        }
        ch.retries += 1;
        let mut rng = SimRng::derive(
            self.cid_seed,
            &[CHALLENGE_STREAM, ch.path, ch.retries as u64],
        );
        ch.data = rng.next_u64();
        ch.deadline = now + self.challenge_timeout(ch.retries);
        ch.needs_send = true;
        self.path_challenge = Some(ch);
    }

    /// Next application event, if any.
    pub fn poll_event(&mut self) -> Option<ConnEvent> {
        self.events.pop_front()
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Processes one received UDP datagram (on the active path).
    pub fn handle_datagram(&mut self, now: SimTime, data: &[u8]) {
        let path = self.active_path;
        self.handle_datagram_on_path(now, data, path);
    }

    /// Processes one received UDP datagram that arrived on `path`.
    /// Migration-aware drivers pass the simulator's per-event path id so
    /// the connection can notice the peer moving (RFC 9000 §9.5: a packet
    /// from a new address is an implicit migration/NAT rebind).
    pub fn handle_datagram_on_path(&mut self, now: SimTime, data: &[u8], path: u64) {
        if self.closed {
            return;
        }
        if path != self.active_path {
            if self.role == Role::Server && self.cfg.cid_pool > 0 && self.handshake_complete {
                self.on_peer_path_switch(now, path);
            } else {
                // Clients (and pre-migration-era endpoints) simply follow
                // the route: their sends already ride the rebound link.
                self.active_path = path;
                if path != 0 {
                    self.ensure_path(path).validated = true;
                }
            }
        }
        // Fault-injection signals travel outside the packet codec (their
        // leading 0x00 byte fails the fixed-bit check of every real
        // packet). The connection dies silently: there is no point
        // closing back at a peer that already forgot us or refused us.
        if data.starts_with(STATELESS_RESET_PREFIX) {
            self.log.push(now, EventData::StatelessReset);
            self.abort(now, ERROR_STATELESS_RESET, "stateless reset");
            self.close_frame_pending = None;
            return;
        }
        if data.starts_with(SERVER_BUSY_PREFIX) {
            self.abort(now, ERROR_SERVER_BUSY, "server busy");
            self.close_frame_pending = None;
            return;
        }
        self.last_activity = Some(now);
        self.bytes_received += data.len();
        if path != 0 {
            self.ensure_path(path).bytes_received += data.len();
        }
        self.amp_blocked_logged = false;

        // quiche quirk: drop a datagram whose leading Initial packet is a
        // reply to one of our PING probes, together with all coalesced
        // packets (paper §4.1).
        if self.ping_reply_drop_budget > 0 {
            if let Ok((pkt, _, used)) = PlainPacket::decode(data, 8) {
                // "together with coalesced packets": the bug only hits
                // datagrams where the ping-acking Initial is followed by
                // further coalesced packets.
                if pkt.header.ty == PacketType::Initial && used < data.len() {
                    let acks_ping = pkt.frames.iter().any(|f| match f {
                        Frame::Ack(a) => self.initial_ping_pns.iter().any(|pn| a.acks(*pn)),
                        _ => false,
                    });
                    if acks_ping {
                        self.ping_reply_drop_budget -= 1;
                        self.self_dropped += 1;
                        return;
                    }
                }
            }
        }

        let mut rest = data;
        while !rest.is_empty() {
            let Ok((pkt, tag, consumed)) = PlainPacket::decode(rest, 8) else {
                return; // undecodable remainder: drop silently
            };
            rest = &rest[consumed..];
            self.accept_packet(now, pkt, tag, consumed);
        }
        // Server address validation: a Handshake packet proves the client
        // owns the address (RFC 9000 §8.1).
        self.flush_pending(now);
    }

    fn accept_packet(&mut self, now: SimTime, pkt: PlainPacket, tag: [u8; 16], size: usize) {
        let space = pkt.space();
        let idx = space.index();
        if self.spaces[idx].discarded {
            return;
        }
        if pkt.header.ty == PacketType::Retry {
            self.on_retry(now, pkt);
            return;
        }
        // Server-side Retry (RFC 9000 §8.1.2): demand an address-validation
        // token before processing the first Initial.
        if self.role == Role::Server && self.use_retry && pkt.header.ty == PacketType::Initial {
            if pkt.header.token.is_empty() {
                if !self.retry_sent {
                    self.retry_sent = true;
                    self.peer_cid = pkt.header.scid;
                    let token = retry_token_for(&pkt.header.scid);
                    let hdr = Header::retry(self.peer_cid, self.local_cid, token);
                    let retry = PlainPacket::new(hdr, Vec::new()).expect("retry has no frames");
                    self.ready_datagrams
                        .push_back(retry.to_bytes(&[0u8; 16]).to_vec());
                }
                return; // drop the tokenless Initial
            }
            if pkt.header.token == retry_token_for(&pkt.header.scid) {
                // A valid token proves the client address (no 3x limit).
                self.address_validated = true;
            }
        }
        // 0-RTT packets are protected under the early keys, not the
        // (not-yet-existing) 1-RTT keys of their shared number space.
        let keys = if pkt.header.ty == PacketType::ZeroRtt {
            if self.role != Role::Server {
                return; // only servers receive 0-RTT
            }
            match &self.early_keys {
                Some(k) => k,
                None => {
                    // Keys exist once the CH's ticket is validated with
                    // early data accepted. If the handshake already
                    // progressed without them, the offer was rejected
                    // (or absent): drop per RFC 9001 §5.7. Otherwise the
                    // 0-RTT packet raced ahead of the CH — buffer it.
                    if self.early_rejected || self.keys[1].is_some() {
                        return;
                    }
                    self.pending_packets.push((pkt, tag, size));
                    return;
                }
            }
        } else {
            match &self.keys[idx] {
                Some(k) => k,
                None => {
                    // Keys not yet available (e.g. Handshake packets
                    // arriving while the ServerHello is lost): buffer.
                    if space == PacketNumberSpace::Handshake {
                        self.buffered_hs_before_keys = true;
                    }
                    self.pending_packets.push((pkt, tag, size));
                    return;
                }
            }
        };
        let peer_side = match self.role {
            Role::Client => KeySide::Server,
            Role::Server => KeySide::Client,
        };
        let key = keys.for_side(peer_side);
        let payload_check = packet_auth_bytes(&pkt);
        if !verify_tag(key, pkt.header.pn, &payload_check, &tag) {
            return; // forged/corrupt packet: drop
        }
        self.process_packet(now, pkt, size);
    }

    /// Re-processes buffered packets once keys become available.
    fn flush_pending(&mut self, now: SimTime) {
        if self.pending_packets.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_packets);
        for (pkt, tag, size) in pending {
            self.accept_packet(now, pkt, tag, size);
        }
    }

    fn process_packet(&mut self, now: SimTime, pkt: PlainPacket, size: usize) {
        let space = pkt.space();
        let idx = space.index();
        let ack_eliciting = pkt.is_ack_eliciting();
        let is_ack_only = pkt.is_ack_only();
        if !self.spaces[idx]
            .recv
            .on_packet(pkt.header.pn, ack_eliciting, now)
        {
            return; // duplicate
        }
        self.stats.packets_opened[idx] += 1;
        self.log.push(
            now,
            EventData::PacketReceived {
                space: space_name(space),
                pn: pkt.header.pn,
                size,
                ack_eliciting,
                frames: frame_summaries(&pkt.frames),
            },
        );
        // Arm the delayed-ACK deadline. Application space: max_ack_delay.
        // Handshake spaces at the *client*: a short batching window so the
        // first server flight is acknowledged as part of the second client
        // flight (Figure 3's wire image / Table 4's datagram mapping)
        // rather than with one standalone ACK per arriving datagram.
        let batching = if space == PacketNumberSpace::Application {
            Some(self.cfg.max_ack_delay)
        } else if self.role == Role::Client && !self.handshake_complete {
            Some(SimDuration::from_millis(2))
        } else {
            None
        };
        if ack_eliciting {
            if let Some(window) = batching {
                let deadline = now + window;
                let recv = &mut self.spaces[idx].recv;
                recv.ack_deadline = Some(recv.ack_deadline.map_or(deadline, |d| d.min(deadline)));
            }
        }

        // Server: learn the client's SCID; client: learn the server's SCID.
        if pkt.header.ty == PacketType::Initial || pkt.header.ty == PacketType::Handshake {
            if self.peer_cid.is_empty() || self.role == Role::Client {
                if !pkt.header.scid.is_empty() {
                    self.peer_cid = pkt.header.scid;
                }
            }
        }

        // Client: detect an instant ACK (pure-ACK Initial packet).
        if self.role == Role::Client && space == PacketNumberSpace::Initial && is_ack_only {
            if !self.iack_received {
                self.iack_received = true;
                self.log.push(now, EventData::InstantAck { sent: false });
            }
        }

        // Server: Handshake packet validates the client address.
        if self.role == Role::Server && pkt.header.ty == PacketType::Handshake {
            self.address_validated = true;
            // Receiving Handshake also means Initial keys can be discarded.
            self.discard_space(now, PacketNumberSpace::Initial);
        }

        let frames = pkt.frames.clone();
        for frame in frames {
            self.process_frame(now, space, &pkt, &frame);
            if self.closed {
                return;
            }
        }
    }

    fn process_frame(
        &mut self,
        now: SimTime,
        space: PacketNumberSpace,
        pkt: &PlainPacket,
        frame: &Frame,
    ) {
        let idx = space.index();
        match frame {
            Frame::Padding { .. } | Frame::Ping => {}
            Frame::Ack(ack) => self.on_ack_frame(now, space, pkt, ack),
            Frame::Crypto { offset, data } => {
                let (contiguous, dup) = self.spaces[idx].crypto.on_rx(*offset, data);
                // A server receiving a retransmitted ClientHello treats it
                // as a probe that its first flight was lost and resends the
                // oldest unacked flight data (the mechanism behind the
                // paper's §5 client-side improvement).
                if self.role == Role::Server && dup && space == PacketNumberSpace::Initial {
                    for sp in [PacketNumberSpace::Initial, PacketNumberSpace::Handshake] {
                        let i = sp.index();
                        if let Some(oldest) = self.trackers[i].oldest_ack_eliciting() {
                            if let Some(content) =
                                self.spaces[i].retx.get(&oldest.retx_token).cloned()
                            {
                                self.spaces[i].queue_retx(content);
                            }
                        }
                    }
                }
                // quiche quirk (§4.2/App. F): under IACK, receiving the
                // ServerHello as a *retransmission* — visible on the wire
                // as a gap in the server's Initial packet numbers — makes
                // quiche retire the same connection ID twice and drop the
                // connection. Triggers exactly in the Figure 6/12 loss
                // pattern (original SH lost, resent after the server PTO)
                // and never in the in-order Figures 5/7 flows.
                if self.role == Role::Client
                    && self.cfg.quirks.abort_on_initial_retransmit_after_iack
                    && self.iack_received
                    && space == PacketNumberSpace::Initial
                    && !self.spaces[idx].recv.is_contiguous_from_zero()
                {
                    self.abort(now, 0x0a, "duplicate connection id retirement");
                    return;
                }
                if !contiguous.is_empty() {
                    let level = level_of(space);
                    match self.tls.read_crypto(level, &contiguous) {
                        Ok(events) => {
                            for ev in events {
                                self.on_tls_event(now, ev);
                            }
                        }
                        Err(_) => self.abort(now, 0x0d, "tls protocol violation"),
                    }
                }
            }
            Frame::Stream {
                id,
                offset,
                data,
                fin,
            } => {
                let rs = self.streams.recv_stream(*id);
                let newly = rs.on_frame(*offset, data, *fin);
                let complete = rs.is_complete();
                if !newly.is_empty() || (*fin && complete) {
                    self.streams.data_recvd += newly.len() as u64;
                    self.events.push_back(ConnEvent::StreamData {
                        id: *id,
                        data: newly,
                        fin: complete,
                    });
                }
            }
            Frame::MaxData { max } => {
                if *max > self.streams.peer_max_data {
                    self.streams.peer_max_data = *max;
                }
            }
            Frame::MaxStreamData { id, max } => {
                let ss = self.streams.send_stream(*id);
                if *max > ss.max_stream_data {
                    ss.max_stream_data = *max;
                }
            }
            Frame::MaxStreams { .. } | Frame::DataBlocked { .. } => {}
            Frame::NewConnectionId { seq, cid, .. } => {
                // Bank the spare CID for rotation on migration. Endpoints
                // that never migrate (cid_pool = 0) keep ignoring these.
                if self.cfg.cid_pool > 0 && !self.peer_cid_pool.iter().any(|(s, _)| s == seq) {
                    if let Ok(c) = ConnectionId::new(cid) {
                        self.peer_cid_pool.push((*seq, c));
                    }
                }
            }
            Frame::RetireConnectionId { seq } => {
                if self.cfg.cid_pool > 0 {
                    self.log.push(now, EventData::CidRetired { seq: *seq });
                }
            }
            Frame::PathChallenge { data } => {
                // Echo back on our next send (RFC 9000 §8.2.2).
                self.pending_path_response = Some(*data);
            }
            Frame::PathResponse { data } => {
                if let Some(ch) = self.path_challenge.take() {
                    if ch.data == *data {
                        let path = ch.path;
                        self.ensure_path(path).validated = true;
                        self.log.push(now, EventData::PathValidated { path });
                        self.amp_blocked_logged = false;
                    } else {
                        // Stale echo of an older probe: keep waiting.
                        self.path_challenge = Some(ch);
                    }
                }
            }
            Frame::NewToken { token } => {
                self.token = token.to_vec();
            }
            Frame::HandshakeDone => {
                if self.role == Role::Client && !self.handshake_confirmed {
                    self.handshake_confirmed = true;
                    self.log.push(now, EventData::HandshakeConfirmed);
                    self.events.push_back(ConnEvent::HandshakeConfirmed);
                    self.discard_space(now, PacketNumberSpace::Handshake);
                }
            }
            Frame::ConnectionClose {
                error_code, reason, ..
            } => {
                self.closed = true;
                self.log.push(
                    now,
                    EventData::ConnectionClosed {
                        error_code: *error_code,
                        reason: reason.clone(),
                    },
                );
                self.events.push_back(ConnEvent::Closed {
                    error_code: *error_code,
                    reason: reason.clone(),
                });
            }
        }
    }

    fn on_ack_frame(
        &mut self,
        now: SimTime,
        space: PacketNumberSpace,
        pkt: &PlainPacket,
        ack: &AckFrame,
    ) {
        let idx = space.index();
        let acked: Vec<u64> = ack.iter_acked().collect();
        let outcome = self.trackers[idx].on_ack(&acked, ack.largest, now, &self.rtt);
        if outcome.newly_acked.is_empty() {
            return;
        }
        self.new_ack_packets += 1;
        // RFC 9002 §6.2.1: a client does not reset the PTO backoff on
        // Initial-space acknowledgments until the server is known to have
        // validated its address (Handshake ACK or HANDSHAKE_DONE).
        let suppress_reset = self.role == Role::Client
            && space == PacketNumberSpace::Initial
            && !self.handshake_complete;
        if !suppress_reset {
            self.pto.on_progress();
        }
        // Persistent congestion is judged against the acks that existed
        // *before* this frame: the probe whose ack finally gets through
        // after an outage is sent later than the whole lost span and must
        // not veto it (§7.6.2 only bars acked sends *inside* the span).
        let prev_largest_acked = self.largest_acked_sent_time;
        let mut acked_in_frame: Vec<SimTime> = Vec::new();
        for p in &outcome.newly_acked {
            if p.in_flight {
                self.cc.on_ack(p.size, p.time_sent, now, &self.rtt);
            }
            if p.ack_eliciting {
                acked_in_frame.push(p.time_sent);
                self.largest_acked_sent_time = Some(
                    self.largest_acked_sent_time
                        .map_or(p.time_sent, |t| t.max(p.time_sent)),
                );
            }
            self.spaces[idx].retx.remove(&p.retx_token);
        }
        self.on_packets_lost(
            now,
            space,
            &outcome.lost,
            &acked_in_frame,
            prev_largest_acked,
        );
        self.log_cc_state(now);
        if let Some(sample) = outcome.rtt_sample {
            // picoquic quirk: ignore the RTT sample carried by a pure-ACK
            // Initial packet (i.e. the instant ACK itself).
            let from_iack = space == PacketNumberSpace::Initial && pkt.is_ack_only();
            let skip = self.cfg.quirks.ignore_iack_rtt && from_iack && self.role == Role::Client;
            if !skip {
                let delay = SimDuration::from_micros(ack.ack_delay_us);
                self.rtt.update(sample, delay, self.handshake_confirmed);
                self.log_metrics(now);
            }
        }
        if space == PacketNumberSpace::Application {
            self.maybe_sample_metrics(now);
        }
    }

    /// Periodic data-phase `metrics_sampled` emission — cwnd, bytes in
    /// flight and srtt sampled while processing Application-space ACKs,
    /// at most once per `metrics_sample_every`. Off by default (`None`),
    /// so legacy traces carry no extra events.
    fn maybe_sample_metrics(&mut self, now: SimTime) {
        let Some(every) = self.cfg.metrics_sample_every else {
            return;
        };
        if !self.handshake_complete {
            return;
        }
        let due = self
            .last_metrics_sample
            .is_none_or(|t| now.saturating_since(t) >= every);
        if !due {
            return;
        }
        self.last_metrics_sample = Some(now);
        self.log.push(
            now,
            EventData::MetricsSampled {
                cwnd: self.cc.cwnd(),
                bytes_in_flight: self.cc.bytes_in_flight(),
                smoothed_rtt_ms: self.rtt.smoothed().map_or(0.0, |s| s.as_millis_f64()),
            },
        );
    }

    /// Processes one detected loss burst: logs each packet, requeues its
    /// retransmittable content, and reports the whole burst to the
    /// congestion controller in a single `on_loss` call so a multi-packet
    /// burst cannot be mis-split across recovery-episode boundaries.
    ///
    /// `acked_in_frame` / `prev_largest_acked` carry the acknowledgment
    /// context persistent-congestion detection needs: the send times
    /// newly acked by the frame that declared these losses, and the
    /// largest acked ack-eliciting send time from *before* that frame.
    fn on_packets_lost(
        &mut self,
        now: SimTime,
        space: PacketNumberSpace,
        lost: &[SentPacket],
        acked_in_frame: &[SimTime],
        prev_largest_acked: Option<SimTime>,
    ) {
        if lost.is_empty() {
            return;
        }
        self.stats.packets_lost += lost.len() as u64;
        let idx = space.index();
        let mut sizes = Vec::with_capacity(lost.len());
        let mut latest_sent: Option<SimTime> = None;
        for p in lost {
            self.log.push(
                now,
                EventData::PacketLost {
                    space: space_name(space),
                    pn: p.pn,
                },
            );
            if p.in_flight {
                sizes.push(p.size);
                latest_sent = Some(latest_sent.map_or(p.time_sent, |t| t.max(p.time_sent)));
            }
            if let Some(content) = self.spaces[idx].retx.remove(&p.retx_token) {
                self.spaces[idx].queue_retx(content);
            }
        }
        if let Some(latest) = latest_sent {
            self.cc.on_loss(&sizes, latest, now);
            self.detect_persistent_congestion(now, lost, acked_in_frame, prev_largest_acked);
        }
    }

    /// RFC 9002 §7.6: if a span of lost ack-eliciting packets — all sent
    /// after the previously largest acked one, with no acknowledged send
    /// *inside* the span — exceeds `3 × PTO` (sample-based, without
    /// backoff), the network was down for the whole period and the window
    /// collapses to minimum.
    fn detect_persistent_congestion(
        &mut self,
        now: SimTime,
        lost: &[SentPacket],
        acked_in_frame: &[SimTime],
        prev_largest_acked: Option<SimTime>,
    ) {
        // §7.6.2: requires an RTT sample; the pre-sample period is exempt.
        let Some(pto) = self.rtt.pto_for_space(true) else {
            return;
        };
        let threshold = persistent_congestion_duration(pto);
        let mut times: Vec<SimTime> = lost
            .iter()
            .filter(|p| p.ack_eliciting)
            .map(|p| p.time_sent)
            .filter(|t| prev_largest_acked.map_or(true, |a| *t > a))
            .collect();
        if times.len() < 2 {
            return;
        }
        times.sort_unstable();
        // Walk the lost sends in order, restarting the candidate span
        // whenever an ack from the declaring frame falls inside it.
        let mut start = times[0];
        let mut prev = times[0];
        let mut established = false;
        for &t in &times[1..] {
            if acked_in_frame.iter().any(|&a| prev < a && a < t) {
                start = t;
            }
            prev = t;
            if t.since(start) > threshold {
                established = true;
                break;
            }
        }
        if established {
            self.cc.on_persistent_congestion();
            self.stats.cc_transitions += 1;
            self.log.push(
                now,
                EventData::CongestionStateUpdated {
                    new_state: "persistent_congestion",
                    cwnd: self.cc.cwnd(),
                    bytes_in_flight: self.cc.bytes_in_flight(),
                },
            );
        }
    }

    /// Emits `congestion_state_updated` when the controller changed phase
    /// since the last report.
    fn log_cc_state(&mut self, now: SimTime) {
        let state = self.cc.state();
        if state != self.last_cc_state {
            self.last_cc_state = state;
            self.stats.cc_transitions += 1;
            self.log.push(
                now,
                EventData::CongestionStateUpdated {
                    new_state: state.as_str(),
                    cwnd: self.cc.cwnd(),
                    bytes_in_flight: self.cc.bytes_in_flight(),
                },
            );
        }
    }

    fn on_tls_event(&mut self, now: SimTime, ev: TlsEvent) {
        match ev {
            TlsEvent::KeysReady(level) => {
                let space = space_of(level);
                let idx = space.index();
                self.keys[idx] = self.tls.keys(level).cloned();
                self.log.push(
                    now,
                    EventData::KeyInstalled {
                        space: space_name(space),
                    },
                );
                // Newly decryptable packets may be buffered.
                self.flush_pending(now);
            }
            TlsEvent::NeedCertificate => {
                self.log.push(now, EventData::CertificateRequested);
                self.events.push_back(ConnEvent::CertificateNeeded);
                match self.cfg.ack_mode {
                    ServerAckMode::InstantAck { pad_to_mtu } => {
                        self.queue_instant_ack(now, pad_to_mtu);
                    }
                    ServerAckMode::WaitForCertificate => {
                        // The whole response path blocks on the store: no
                        // ACK leaves until the certificate is available
                        // (Figure 1a -- the sleep covers the response path).
                        self.waiting_for_cert = true;
                    }
                }
            }
            TlsEvent::ResumptionAccepted => {
                self.log.push(now, EventData::ResumptionUsed);
            }
            TlsEvent::EarlyDataAccepted => {
                self.log.push(now, EventData::EarlyData { accepted: true });
                if self.role == Role::Server {
                    // Install the 0-RTT read keys; the CH datagram may
                    // carry (or be followed by) 0-RTT packets.
                    self.early_keys = self.tls.early_keys().cloned();
                    self.flush_pending(now);
                }
            }
            TlsEvent::EarlyDataRejected => {
                self.log.push(now, EventData::EarlyData { accepted: false });
                self.early_rejected = true;
                if self.role == Role::Client {
                    self.requeue_zero_rtt(now);
                }
                self.early_keys = None;
            }
            TlsEvent::TicketIssued(ticket) => {
                self.log.push(now, EventData::SessionTicket { sent: false });
                self.events.push_back(ConnEvent::TicketReceived(ticket));
            }
            TlsEvent::HandshakeComplete => {
                self.handshake_complete = true;
                self.log.push(now, EventData::HandshakeComplete);
                self.events.push_back(ConnEvent::HandshakeComplete);
                // Announce the spare-CID pool the peer rotates through on
                // migration (RFC 9000 §5.1.1). Seq 0 is the handshake CID.
                if self.cfg.cid_pool > 0 {
                    let kind = match self.role {
                        Role::Client => CID_KIND_CLIENT,
                        Role::Server => CID_KIND_SERVER,
                    };
                    for seq in 1..=self.cfg.cid_pool as u64 {
                        let cid = derived_cid(self.cid_seed, kind, seq);
                        self.pending_new_cids
                            .push((seq, 0, cid.as_slice().to_vec()));
                    }
                }
                match self.role {
                    Role::Server => {
                        self.handshake_done_pending = true;
                        self.handshake_confirmed = true;
                        self.log.push(now, EventData::HandshakeConfirmed);
                        // A ticket-issuing server queued its NST at the
                        // Application level when the handshake completed.
                        if self.tls.pending_output(Level::Application) > 0 {
                            self.log.push(now, EventData::SessionTicket { sent: true });
                        }
                        // Some stacks ACK the client Finished in the
                        // Handshake space before discarding it (Table 3).
                        if self.cfg.send_handshake_space_acks && !self.cfg.no_initial_acks {
                            self.queue_handshake_ack(now);
                        }
                        self.discard_space(now, PacketNumberSpace::Handshake);
                    }
                    Role::Client => {
                        // Client Finished (and any 1-RTT request already
                        // queued by the application) forms flight 2.
                    }
                }
            }
        }
        // Move any TLS output into the per-space crypto streams.
        self.pump_tls_output();
    }

    fn pump_tls_output(&mut self) {
        for (level, idx) in [
            (Level::Initial, 0usize),
            (Level::Handshake, 1),
            (Level::Application, 2),
        ] {
            if let Some(out) = self.tls.take_output(level) {
                self.spaces[idx].crypto.queue_tx(&out);
            }
        }
    }

    /// 0-RTT was rejected: remove the early packets from tracking and
    /// requeue their content for 1-RTT transmission (RFC 9001 §4.6.2).
    fn requeue_zero_rtt(&mut self, now: SimTime) {
        let idx = PacketNumberSpace::Application.index();
        if self.spaces[idx].zero_rtt_pns.is_empty() {
            return;
        }
        let drained = self.trackers[idx].drain();
        let mut freed = 0usize;
        for p in drained {
            debug_assert!(
                self.spaces[idx].is_zero_rtt(p.pn),
                "only 0-RTT packets live in the app space before 1-RTT keys"
            );
            if p.in_flight {
                freed += p.size;
            }
            if let Some(content) = self.spaces[idx].retx.remove(&p.retx_token) {
                self.spaces[idx].queue_retx(content);
            }
            // Deliberately no `packet_lost` qlog event: these packets are
            // removed from tracking by the reject (RFC 9001 §4.6.2), not
            // declared lost by loss recovery — `client_packets_lost`
            // keeps meaning what its doc says. The `early_data
            // {accepted: false}` event already marks the unwind.
        }
        self.cc.on_discarded(freed);
        let _ = now;
    }

    /// Server driver callback: the certificate arrived from the store.
    pub fn certificate_ready(&mut self, now: SimTime) {
        assert_eq!(self.role, Role::Server);
        self.waiting_for_cert = false;
        self.log.push(now, EventData::CertificateReady);
        let events = self.tls.provide_certificate();
        for ev in events {
            self.on_tls_event(now, ev);
        }
        self.pump_tls_output();
    }

    fn queue_instant_ack(&mut self, now: SimTime, pad_to_mtu: bool) {
        // Build a pure-ACK Initial datagram right now, ahead of the flight.
        let idx = 0;
        let Some(ack_list) = self.spaces[idx].recv.ack_list().map(<[u64]>::to_vec) else {
            return;
        };
        let ack = AckFrame::from_sorted_desc(&ack_list, self.report_ack_delay(now, idx));
        let mut frames = vec![Frame::Ack(ack)];
        if pad_to_mtu {
            let base = 1 + 4 + 1 + 8 + 1 + 8 + 1 + 2 + 4 + frames[0].encoded_len() + 16;
            frames.push(Frame::Padding {
                len: MIN_INITIAL_DATAGRAM.saturating_sub(base),
            });
        }
        let pn = self.spaces[idx].alloc_pn();
        let header = Header::initial(self.peer_cid, self.local_cid, Vec::new(), pn);
        let pkt = PlainPacket::new(header, frames).expect("ack frame valid in initial");
        if let Some(dgram) = self.seal_and_register(now, pkt, true) {
            self.ready_datagrams.push_back(dgram);
            self.spaces[idx].recv.on_ack_sent();
            self.log.push(now, EventData::InstantAck { sent: true });
        }
    }

    /// Emits a standalone Handshake-space ACK (used by server stacks that
    /// acknowledge the client Finished before discarding the space).
    fn queue_handshake_ack(&mut self, now: SimTime) {
        let idx = 1;
        if self.keys[idx].is_none() || self.spaces[idx].discarded {
            return;
        }
        let Some(list) = self.spaces[idx].recv.ack_list().map(<[u64]>::to_vec) else {
            return;
        };
        let delay = self.report_ack_delay(now, idx);
        let ack = AckFrame::from_sorted_desc(&list, delay);
        let pn = self.spaces[idx].alloc_pn();
        let header = Header::handshake(self.peer_cid, self.local_cid, pn);
        let pkt = PlainPacket::new(header, vec![Frame::Ack(ack)]).expect("ack valid in handshake");
        if let Some(dgram) = self.seal_and_register(now, pkt, false) {
            self.ready_datagrams.push_back(dgram);
            self.spaces[idx].recv.on_ack_sent();
        }
    }

    fn report_ack_delay(&self, now: SimTime, space_idx: usize) -> u64 {
        let policy = if space_idx == 1 {
            self.cfg
                .handshake_ack_delay_report
                .unwrap_or(self.cfg.ack_delay_report)
        } else {
            self.cfg.ack_delay_report
        };
        match policy {
            AckDelayReport::Zero => 0,
            AckDelayReport::Fixed(d) => d.as_micros(),
            AckDelayReport::Actual => self.spaces[space_idx]
                .recv
                .largest_recv_time
                .map(|t| now.saturating_since(t).as_micros())
                .unwrap_or(0),
        }
    }

    fn on_retry(&mut self, now: SimTime, pkt: PlainPacket) {
        if self.role != Role::Client || self.iack_received || !self.token.is_empty() {
            return; // only one Retry per connection, clients only
        }
        self.token = pkt.header.token.clone();
        self.peer_cid = pkt.header.scid;
        // Restart TLS and the Initial crypto stream with the token attached.
        self.tls.reset_for_retry();
        self.spaces[0] = SpaceState::default();
        self.trackers[0] = SentTracker::new();
        if let Some(ch) = self.tls.take_output(Level::Initial) {
            self.initial_crypto_copy = ch.to_vec();
            self.spaces[0].crypto.queue_tx(&ch);
        }
        // A Retry can serve as the first RTT estimate (paper §5).
        let _ = now;
    }

    fn discard_space(&mut self, now: SimTime, space: PacketNumberSpace) {
        let idx = space.index();
        if self.spaces[idx].discarded {
            return;
        }
        self.spaces[idx].discarded = true;
        let freed = self.trackers[idx].discard();
        self.cc.on_discarded(freed);
        self.keys[idx] = None;
        // Key discard resets the PTO backoff and timer (RFC 9002 §6.2.2).
        self.pto.on_progress();
        let _ = now;
    }

    fn abort(&mut self, now: SimTime, error_code: u64, reason: &str) {
        if self.closed {
            return;
        }
        self.closed = true;
        self.close_frame_pending = Some((error_code, reason.to_string()));
        rq_obs::obs_log!(
            "quic/conn",
            rq_obs::Level::Warn,
            "{} closing: code={:#x} reason={}",
            self.cfg.name,
            error_code,
            reason
        );
        self.log.push(
            now,
            EventData::ConnectionClosed {
                error_code,
                reason: reason.to_string(),
            },
        );
        self.events.push_back(ConnEvent::Closed {
            error_code,
            reason: reason.to_string(),
        });
    }

    /// Application API: closes the connection with an application error.
    pub fn close(&mut self, now: SimTime, error_code: u64, reason: &str) {
        self.abort(now, error_code, reason);
    }

    fn log_metrics(&mut self, now: SimTime) {
        if let Some(s) = self.rtt.smoothed() {
            self.log.push(
                now,
                EventData::MetricsUpdated {
                    smoothed_rtt_ms: s.as_millis_f64(),
                    rtt_variance_ms: Some(self.rtt.rttvar().as_millis_f64()),
                    latest_rtt_ms: self.rtt.latest().as_millis_f64(),
                    pto_count: self.pto.pto_count,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Application data API
    // ------------------------------------------------------------------

    /// Opens/extends a send stream with `data` (+FIN).
    pub fn send_stream_data(&mut self, stream_id: u64, data: &[u8], fin: bool) {
        self.streams.send_stream(stream_id).write(data, fin);
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Produces the next outgoing UDP datagram, or `None` when idle.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Vec<u8>> {
        // WFC server blocked on the certificate store: fully silent.
        if self.waiting_for_cert {
            return None;
        }
        if let Some(d) = self.ready_datagrams.pop_front() {
            self.note_datagram_sent(now, d.len());
            return Some(d);
        }
        if self.closed {
            if let Some((code, reason)) = self.close_frame_pending.take() {
                return self.build_close_datagram(now, code, &reason);
            }
            return None;
        }
        // Client flight 2: emitted as an explicit datagram plan honoring
        // the per-implementation coalescing layout (Table 4).
        if self.role == Role::Client && self.handshake_complete && !self.flight2_sent {
            self.build_client_flight2(now);
            if let Some(d) = self.ready_datagrams.pop_front() {
                self.bytes_sent += d.len();
                self.last_activity = Some(now);
                self.first_send_at.get_or_insert(now);
                return Some(d);
            }
        }
        self.build_datagram(now).map(|d| {
            self.note_datagram_sent(now, d.len());
            d
        })
    }

    /// Books an outgoing datagram against global and per-path
    /// anti-amplification accounting.
    fn note_datagram_sent(&mut self, now: SimTime, len: usize) {
        self.bytes_sent += len;
        if self.active_path != 0 {
            self.ensure_path(self.active_path).bytes_sent += len;
        }
        self.last_activity = Some(now);
        self.first_send_at.get_or_insert(now);
    }

    /// Builds one generic datagram by greedily coalescing per-space packets.
    fn build_datagram(&mut self, now: SimTime) -> Option<Vec<u8>> {
        let mut budget = MAX_DATAGRAM_SIZE;
        // Amplification gate (whole-datagram granularity).
        let amp = self.amplification_budget();
        if amp == 0 {
            return None;
        }
        budget = budget.min(amp);

        let mut datagram: Vec<u8> = Vec::new();
        let mut contains_client_initial = false;
        let mut planned: Vec<PlainPacket> = Vec::new();

        for space in PacketNumberSpace::ALL {
            let idx = space.index();
            let early = idx == 2 && self.keys[idx].is_none() && self.can_send_early();
            if (self.keys[idx].is_none() && !early) || self.spaces[idx].discarded {
                continue;
            }
            let overhead = self.packet_overhead(space);
            if budget <= overhead + 8 {
                break;
            }
            let max_payload = budget - overhead;
            let (frames, _probe) = self.build_frames_for_space(now, space, max_payload);
            if frames.is_empty() {
                continue;
            }
            if space == PacketNumberSpace::Initial && self.role == Role::Client {
                contains_client_initial = true;
            }
            let pkt = self.make_packet(space, frames);
            budget = budget.saturating_sub(pkt.encoded_len());
            planned.push(pkt);
        }
        if planned.is_empty() {
            if !self.amp_blocked_logged
                && self.amplification_budget() < MAX_DATAGRAM_SIZE
                && self.wants_to_send()
            {
                self.amp_blocked_logged = true;
                self.stats.amp_stalls += 1;
                self.log.push(
                    now,
                    EventData::AmplificationBlocked {
                        budget: self.amplification_budget(),
                        wanted: MAX_DATAGRAM_SIZE,
                    },
                );
            }
            return None;
        }
        // Client datagrams containing Initial packets pad to 1200 bytes
        // (RFC 9000 §14.1). Sizes come from the exact packet encodings.
        if contains_client_initial {
            let used: usize = planned.iter().map(PlainPacket::encoded_len).sum();
            if used < MIN_INITIAL_DATAGRAM {
                let pad = MIN_INITIAL_DATAGRAM - used;
                let last = planned.last_mut().unwrap();
                last.frames.push(Frame::Padding { len: pad });
                // A grown length varint can leave us 1-2 bytes short; fix up.
                let total: usize = planned.iter().map(PlainPacket::encoded_len).sum::<usize>();
                if total < MIN_INITIAL_DATAGRAM {
                    if let Some(Frame::Padding { len }) =
                        planned.last_mut().unwrap().frames.last_mut()
                    {
                        *len += MIN_INITIAL_DATAGRAM - total;
                    }
                }
            }
        }
        for pkt in planned {
            let bytes = self.seal_and_register(now, pkt, true)?;
            datagram.extend_from_slice(&bytes);
        }
        (!datagram.is_empty()).then_some(datagram)
    }

    /// True if any space has content waiting (used for the
    /// amplification-blocked diagnostic).
    fn wants_to_send(&self) -> bool {
        self.spaces.iter().any(SpaceState::has_data_to_send)
            || self.streams.want_send()
            || self.handshake_done_pending
            || self.pending_path_response.is_some()
            || self.path_challenge.as_ref().is_some_and(|c| c.needs_send)
            || !self.pending_retire_cids.is_empty()
            || !self.pending_new_cids.is_empty()
    }

    /// Whether this endpoint may emit 0-RTT packets right now: a client
    /// holding early keys, before the handshake completes, whose offer
    /// has not been rejected.
    fn can_send_early(&self) -> bool {
        self.role == Role::Client
            && self.early_keys.is_some()
            && !self.handshake_complete
            && !self.early_rejected
    }

    fn packet_overhead(&self, space: PacketNumberSpace) -> usize {
        // Header + length varint + pn + tag, conservatively. 0-RTT
        // packets (application space before 1-RTT keys) carry a long
        // header, not the 1-RTT short header.
        match space {
            PacketNumberSpace::Application if self.keys[2].is_some() => 1 + 8 + 4 + 16,
            _ => 1 + 4 + 1 + 8 + 1 + 8 + 1 + 2 + 4 + 16 + 2,
        }
    }

    /// Assembles the frame list for one packet in `space`, consuming
    /// pending state. Returns `(frames, is_probe_only)`.
    fn build_frames_for_space(
        &mut self,
        now: SimTime,
        space: PacketNumberSpace,
        max_payload: usize,
    ) -> (Vec<Frame>, bool) {
        let idx = space.index();
        let mut frames = Vec::new();
        let mut used = 0usize;
        let mut probe_only = true;
        // Building a 0-RTT packet: ACK and HANDSHAKE_DONE frames are not
        // permitted there (RFC 9000 §12.4), and neither arises before the
        // handshake anyway.
        let early = space == PacketNumberSpace::Application && self.keys[idx].is_none();

        // 1. ACK: attach whenever owed; in handshake spaces attach
        //    opportunistically with any other content too. Clients batch
        //    handshake-space ACKs for a short window (see handshake-space
        //    deadline arming above).
        let deadline_passed = self.spaces[idx].recv.ack_overdue
            || self.spaces[idx]
                .recv
                .ack_deadline
                .map(|d| now >= d)
                .unwrap_or(false);
        let ack_due = self.spaces[idx].recv.ack_pending
            && if space == PacketNumberSpace::Application {
                self.spaces[idx].recv.unacked_eliciting >= self.cfg.ack_eliciting_threshold
                    || deadline_passed
            } else if self.role == Role::Client && !self.handshake_complete {
                deadline_passed
            } else {
                true
            };
        let mut attach_ack =
            ack_due || (self.spaces[idx].recv.ack_pending && self.spaces[idx].has_data_to_send());
        // msquic (Table 3): no ACK frames in Initial/Handshake spaces.
        if self.cfg.no_initial_acks
            && self.role == Role::Server
            && space != PacketNumberSpace::Application
        {
            attach_ack = false;
        }
        if early {
            attach_ack = false;
        }
        if attach_ack {
            if let Some(list) = self.spaces[idx].recv.ack_list().map(<[u64]>::to_vec) {
                let delay = self.report_ack_delay(now, idx);
                let ack = AckFrame::from_sorted_desc(&list, delay);
                let f = Frame::Ack(ack);
                used += f.encoded_len();
                frames.push(f);
                self.spaces[idx].recv.on_ack_sent();
            }
        }

        // 2. PING probes.
        while self.spaces[idx].pending_pings > 0 && used + 1 <= max_payload {
            self.spaces[idx].pending_pings -= 1;
            frames.push(Frame::Ping);
            used += 1;
        }

        // 3. Retransmission queue.
        let retx_items = std::mem::take(&mut self.spaces[idx].retx_queue);
        for item in retx_items {
            let mut leftover = RetxContent::default();
            for (off, data) in item.crypto {
                let room = max_payload.saturating_sub(used + 10);
                if room == 0 {
                    leftover.crypto.push((off, data));
                    continue;
                }
                if data.len() <= room {
                    used += 10 + data.len();
                    frames.push(Frame::Crypto { offset: off, data });
                    probe_only = false;
                } else {
                    let head = data.slice(..room);
                    let tail = data.slice(room..);
                    used += 10 + head.len();
                    frames.push(Frame::Crypto {
                        offset: off,
                        data: head,
                    });
                    leftover.crypto.push((off + room as u64, tail));
                    probe_only = false;
                }
            }
            for (sid, off, data, fin) in item.stream {
                let room = max_payload.saturating_sub(used + 12);
                if room == 0 {
                    leftover.stream.push((sid, off, data, fin));
                    continue;
                }
                if data.len() <= room {
                    used += 12 + data.len();
                    frames.push(Frame::Stream {
                        id: sid,
                        offset: off,
                        data,
                        fin,
                    });
                    probe_only = false;
                } else {
                    let head = data.slice(..room);
                    let tail = data.slice(room..);
                    used += 12 + head.len();
                    frames.push(Frame::Stream {
                        id: sid,
                        offset: off,
                        data: head,
                        fin: false,
                    });
                    leftover.stream.push((sid, off + room as u64, tail, fin));
                    probe_only = false;
                }
            }
            if item.handshake_done {
                if used + 1 <= max_payload {
                    frames.push(Frame::HandshakeDone);
                    used += 1;
                    probe_only = false;
                } else {
                    leftover.handshake_done = true;
                }
            }
            if let Some(md) = item.max_data {
                frames.push(Frame::MaxData { max: md });
                used += 9;
                probe_only = false;
            }
            for (sid, v) in item.max_stream_data {
                frames.push(Frame::MaxStreamData { id: sid, max: v });
                used += 12;
                probe_only = false;
            }
            for (seq, rpt, cid) in item.new_cids {
                frames.push(Frame::NewConnectionId {
                    seq,
                    retire_prior_to: rpt,
                    cid,
                });
                used += 30;
                probe_only = false;
            }
            self.spaces[idx].queue_retx(leftover);
        }

        // 4. Fresh crypto data.
        while self.spaces[idx].crypto.tx_len() > 0 {
            let room = max_payload.saturating_sub(used + 10);
            if room == 0 {
                break;
            }
            if let Some((off, data)) = self.spaces[idx].crypto.take_tx(room) {
                used += 10 + data.len();
                frames.push(Frame::Crypto { offset: off, data });
                probe_only = false;
            } else {
                break;
            }
        }

        // 5. Application-space extras.
        if space == PacketNumberSpace::Application {
            if self.handshake_done_pending && !early && used + 1 <= max_payload {
                self.handshake_done_pending = false;
                frames.push(Frame::HandshakeDone);
                used += 1;
                probe_only = false;
            }
            // Migration plumbing: challenge/response first (time-critical),
            // then CID bookkeeping. All empty when cid_pool is 0.
            if !early {
                if used + 9 <= max_payload {
                    if let Some(data) = self.pending_path_response.take() {
                        frames.push(Frame::PathResponse { data });
                        used += 9;
                        probe_only = false;
                    }
                }
                let challenge = self.path_challenge.as_ref().and_then(|ch| {
                    (ch.needs_send && used + 9 <= max_payload).then_some((ch.data, ch.path))
                });
                if let Some((data, path)) = challenge {
                    self.path_challenge.as_mut().unwrap().needs_send = false;
                    frames.push(Frame::PathChallenge { data });
                    used += 9;
                    probe_only = false;
                    self.log.push(now, EventData::PathChallengeSent { path });
                }
                while !self.pending_retire_cids.is_empty() && used + 2 <= max_payload {
                    let seq = self.pending_retire_cids.remove(0);
                    frames.push(Frame::RetireConnectionId { seq });
                    used += 2;
                    probe_only = false;
                }
                while !self.pending_new_cids.is_empty() && used + 30 <= max_payload {
                    let (seq, retire_prior_to, cid) = self.pending_new_cids.remove(0);
                    frames.push(Frame::NewConnectionId {
                        seq,
                        retire_prior_to,
                        cid,
                    });
                    used += 30;
                    probe_only = false;
                }
            }
            if self.streams.should_send_max_data() && used + 9 <= max_payload {
                let v = self.streams.next_max_data();
                frames.push(Frame::MaxData { max: v });
                used += 9;
                probe_only = false;
            }
            for (sid, grant) in self.streams.stream_credit_updates() {
                if used + 12 > max_payload {
                    break;
                }
                frames.push(Frame::MaxStreamData {
                    id: sid,
                    max: grant,
                });
                used += 12;
                probe_only = false;
            }
            // Stream data, congestion-controlled.
            if self.streams.want_send() {
                let cc_room = self.cc.available();
                let conn_fc = self.streams.conn_send_budget() as usize;
                let ids: Vec<u64> = self
                    .streams
                    .send
                    .iter()
                    .filter(|(_, s)| s.want_send())
                    .map(|(id, _)| *id)
                    .collect();
                for sid in ids {
                    let room = max_payload
                        .saturating_sub(used + 12)
                        .min(cc_room.saturating_sub(used))
                        .min(conn_fc);
                    if room == 0 {
                        break;
                    }
                    let ss = self.streams.send_stream(sid);
                    if let Some((off, data, fin)) = ss.take(room) {
                        self.streams.data_sent += data.len() as u64;
                        used += 12 + data.len();
                        frames.push(Frame::Stream {
                            id: sid,
                            offset: off,
                            data,
                            fin,
                        });
                        probe_only = false;
                    }
                }
            }
        }

        let has_real_content = frames
            .iter()
            .any(|f| !matches!(f, Frame::Ack(_) | Frame::Padding { .. }));
        (frames, probe_only && !has_real_content)
    }

    fn make_packet(&mut self, space: PacketNumberSpace, frames: Vec<Frame>) -> PlainPacket {
        let idx = space.index();
        let pn = self.spaces[idx].alloc_pn();
        let header = match space {
            PacketNumberSpace::Initial => {
                Header::initial(self.peer_cid, self.local_cid, self.token.clone(), pn)
            }
            PacketNumberSpace::Handshake => Header::handshake(self.peer_cid, self.local_cid, pn),
            // Before the 1-RTT keys exist, application-space packets are
            // 0-RTT long-header packets under the early keys; afterwards
            // they are short-header 1-RTT packets. Both share the space's
            // packet number sequence (RFC 9000 §12.3).
            PacketNumberSpace::Application => {
                if self.keys[2].is_some() {
                    Header::one_rtt(self.peer_cid, pn)
                } else {
                    Header::zero_rtt(self.peer_cid, self.local_cid, pn)
                }
            }
        };
        PlainPacket::new(header, frames).expect("frame permissions checked by construction")
    }

    /// Seals a packet, registers it with recovery/cc, and returns its
    /// bytes. `count_in_flight` is false for pure-ACK packets.
    fn seal_and_register(
        &mut self,
        now: SimTime,
        pkt: PlainPacket,
        _count: bool,
    ) -> Option<Vec<u8>> {
        let space = pkt.space();
        let idx = space.index();
        let keys = if pkt.header.ty == PacketType::ZeroRtt {
            self.early_keys.as_ref()?
        } else {
            self.keys[idx].as_ref()?
        };
        let side = match self.role {
            Role::Client => KeySide::Client,
            Role::Server => KeySide::Server,
        };
        let key = keys.for_side(side);
        let tag = seal_tag(key, pkt.header.pn, &packet_auth_bytes(&pkt));
        let bytes = pkt.to_bytes(&tag);
        let ack_eliciting = pkt.is_ack_eliciting();
        let in_flight = ack_eliciting
            || pkt
                .frames
                .iter()
                .any(|f| matches!(f, Frame::Padding { .. }));
        // Track PING probes for the quiche quirk.
        if space == PacketNumberSpace::Initial
            && pkt.frames.iter().any(|f| matches!(f, Frame::Ping))
        {
            self.initial_ping_pns.push(pkt.header.pn);
        }
        // Track 0-RTT sends so a server reject can unwind exactly them.
        if pkt.header.ty == PacketType::ZeroRtt {
            self.spaces[idx].mark_zero_rtt(pkt.header.pn);
        }
        let retx = retx_content_of(&pkt.frames);
        let token = pkt.header.pn;
        if !retx.is_empty() {
            self.spaces[idx].retx.insert(token, retx);
        }
        self.trackers[idx].on_sent(SentPacket {
            pn: pkt.header.pn,
            time_sent: now,
            ack_eliciting,
            in_flight,
            size: bytes.len(),
            retx_token: token,
        });
        if in_flight {
            self.cc.on_sent(bytes.len());
        }
        if ack_eliciting {
            self.last_eliciting_send = Some(now);
        }
        self.stats.packets_sealed[idx] += 1;
        self.log.push(
            now,
            EventData::PacketSent {
                space: space_name(space),
                pn: pkt.header.pn,
                size: bytes.len(),
                ack_eliciting,
                frames: frame_summaries(&pkt.frames),
            },
        );
        // Client: sending the first Handshake packet discards Initial keys.
        if self.role == Role::Client && space == PacketNumberSpace::Handshake {
            self.discard_space(now, PacketNumberSpace::Initial);
        }
        Some(bytes.to_vec())
    }

    /// Builds the client's second flight according to the coalescing
    /// layout (Table 4): Initial ACK, Handshake FIN (+HS ACK), and the
    /// first 1-RTT packet, spread over `flight2_datagrams` datagrams.
    fn build_client_flight2(&mut self, now: SimTime) {
        self.flight2_sent = true;
        let mut groups: Vec<Vec<(PacketNumberSpace, Vec<Frame>)>> = Vec::new();

        // Packet A: Initial ACK (if Initial space still alive).
        let pkt_a = if !self.spaces[0].discarded && self.keys[0].is_some() {
            self.spaces[0]
                .recv
                .ack_list()
                .map(<[u64]>::to_vec)
                .map(|list| {
                    let delay = self.report_ack_delay(now, 0);
                    self.spaces[0].recv.on_ack_sent();
                    (
                        PacketNumberSpace::Initial,
                        vec![Frame::Ack(AckFrame::from_sorted_desc(&list, delay))],
                    )
                })
        } else {
            None
        };
        // Packet B: Handshake ACK + client Finished.
        let mut b_frames = Vec::new();
        if let Some(list) = self.spaces[1].recv.ack_list().map(<[u64]>::to_vec) {
            let delay = self.report_ack_delay(now, 1);
            b_frames.push(Frame::Ack(AckFrame::from_sorted_desc(&list, delay)));
            self.spaces[1].recv.on_ack_sent();
        }
        while let Some((off, data)) = self.spaces[1].crypto.take_tx(usize::MAX) {
            b_frames.push(Frame::Crypto { offset: off, data });
        }
        let pkt_b = (PacketNumberSpace::Handshake, b_frames);
        // Packet C: first 1-RTT packet (request or ACK of early server data).
        let mut c_frames = Vec::new();
        if self.streams.want_send() {
            let ids: Vec<u64> = self
                .streams
                .send
                .iter()
                .filter(|(_, s)| s.want_send())
                .map(|(id, _)| *id)
                .collect();
            for sid in ids {
                let ss = self.streams.send_stream(sid);
                if let Some((off, data, fin)) = ss.take(1000) {
                    self.streams.data_sent += data.len() as u64;
                    c_frames.push(Frame::Stream {
                        id: sid,
                        offset: off,
                        data,
                        fin,
                    });
                }
            }
        }
        let pkt_c = (!c_frames.is_empty()).then_some((PacketNumberSpace::Application, c_frames));

        // Distribute packets over datagrams per the layout.
        match self.cfg.flight2_datagrams {
            1 => {
                let mut g = Vec::new();
                if let Some(a) = pkt_a {
                    g.push(a);
                }
                g.push(pkt_b);
                if let Some(c) = pkt_c {
                    g.push(c);
                }
                groups.push(g);
            }
            2 => {
                let mut g1 = Vec::new();
                if let Some(a) = pkt_a {
                    g1.push(a);
                }
                g1.push(pkt_b);
                groups.push(g1);
                if let Some(c) = pkt_c {
                    groups.push(vec![c]);
                }
            }
            4 => {
                if let Some(a) = pkt_a {
                    groups.push(vec![a]);
                }
                // picoquic sends a separate HS ACK datagram before the FIN.
                let (hs, mut fin_frames) = (pkt_b.0, pkt_b.1);
                let ack_frame: Vec<Frame> = fin_frames
                    .iter()
                    .position(|f| matches!(f, Frame::Ack(_)))
                    .map(|i| vec![fin_frames.remove(i)])
                    .unwrap_or_default();
                if !ack_frame.is_empty() {
                    groups.push(vec![(hs, ack_frame)]);
                }
                groups.push(vec![(hs, fin_frames)]);
                if let Some(c) = pkt_c {
                    groups.push(vec![c]);
                }
            }
            _ => {
                // 3 (default): [Initial ACK], [HS FIN], [1-RTT].
                if let Some(a) = pkt_a {
                    groups.push(vec![a]);
                }
                groups.push(vec![pkt_b]);
                if let Some(c) = pkt_c {
                    groups.push(vec![c]);
                }
            }
        }

        for group in groups {
            // Build the packets first so padding uses exact sizes.
            let mut pkts: Vec<PlainPacket> = Vec::new();
            let mut has_initial = false;
            for (space, frames) in group {
                if frames.is_empty() {
                    continue;
                }
                if space == PacketNumberSpace::Initial {
                    has_initial = true;
                }
                pkts.push(self.make_packet(space, frames));
            }
            if pkts.is_empty() {
                continue;
            }
            // Datagrams carrying an Initial packet pad to 1200 bytes.
            if has_initial {
                let total: usize = pkts.iter().map(PlainPacket::encoded_len).sum();
                if total < MIN_INITIAL_DATAGRAM {
                    pkts.last_mut().unwrap().frames.push(Frame::Padding {
                        len: MIN_INITIAL_DATAGRAM - total,
                    });
                    let total2: usize = pkts.iter().map(PlainPacket::encoded_len).sum();
                    if total2 < MIN_INITIAL_DATAGRAM {
                        if let Some(Frame::Padding { len }) =
                            pkts.last_mut().unwrap().frames.last_mut()
                        {
                            *len += MIN_INITIAL_DATAGRAM - total2;
                        }
                    }
                }
            }
            let mut dgram = Vec::new();
            for pkt in pkts {
                if let Some(bytes) = self.seal_and_register(now, pkt, true) {
                    dgram.extend_from_slice(&bytes);
                }
            }
            if !dgram.is_empty() {
                self.ready_datagrams.push_back(dgram);
            }
        }
    }

    fn build_close_datagram(&mut self, now: SimTime, code: u64, reason: &str) -> Option<Vec<u8>> {
        // Send CONNECTION_CLOSE in the highest available space.
        for space in [
            PacketNumberSpace::Application,
            PacketNumberSpace::Handshake,
            PacketNumberSpace::Initial,
        ] {
            let idx = space.index();
            if self.keys[idx].is_some() && !self.spaces[idx].discarded {
                let frame = Frame::ConnectionClose {
                    error_code: code,
                    reason: reason.to_string(),
                    app: false,
                };
                let mut pkt = self.make_packet(space, vec![frame]);
                // Client datagrams carrying Initial packets pad to 1200 B
                // (RFC 9000 §14.1) — including the close.
                if self.role == Role::Client && space == PacketNumberSpace::Initial {
                    let len = pkt.encoded_len();
                    if len < MIN_INITIAL_DATAGRAM {
                        pkt.frames.push(Frame::Padding {
                            len: MIN_INITIAL_DATAGRAM - len,
                        });
                    }
                }
                return self.seal_and_register(now, pkt, false);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// The next timer deadline, if any.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        if self.closed {
            return None;
        }
        let mut next: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        consider(self.loss_time());
        consider(self.pto_deadline());
        consider(self.ack_deadline());
        consider(self.give_up_deadline());
        consider(self.path_challenge.as_ref().map(|c| c.deadline));
        next
    }

    /// Absolute instant the client abandons an unfinished handshake
    /// (`give_up_after` on the config); `None` when the knob is off, the
    /// handshake already completed, or nothing was sent yet.
    fn give_up_deadline(&self) -> Option<SimTime> {
        if self.role != Role::Client || self.handshake_complete {
            return None;
        }
        let after = self.cfg.give_up_after?;
        Some(self.first_send_at? + after)
    }

    /// Abandons the handshake: silent close, nothing sent to a peer that
    /// is presumed dead or unreachable.
    fn give_up(&mut self, now: SimTime) {
        self.log.push(
            now,
            EventData::HandshakeAbandoned {
                pto_count: self.pto.count(),
            },
        );
        self.abort(now, ERROR_GIVE_UP, "handshake give-up");
        self.close_frame_pending = None;
    }

    fn loss_time(&self) -> Option<SimTime> {
        self.trackers.iter().filter_map(|t| t.loss_time).min()
    }

    fn ack_deadline(&self) -> Option<SimTime> {
        self.spaces
            .iter()
            .filter(|sp| sp.recv.ack_pending)
            .filter_map(|sp| sp.recv.ack_deadline)
            .min()
    }

    /// PTO duration honoring the picoquic default-PTO quirk.
    fn pto_duration_for(&self, is_app: bool) -> SimDuration {
        if self.cfg.quirks.ignore_iack_rtt && !self.handshake_confirmed {
            self.pto.default_pto.mul(self.pto.backoff())
        } else {
            self.pto.pto_duration(&self.rtt, is_app)
        }
    }

    /// The PTO deadline (RFC 9002 A.8 + the handshake-deadlock rule).
    fn pto_deadline(&self) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for space in PacketNumberSpace::ALL {
            let idx = space.index();
            if self.spaces[idx].discarded || self.keys[idx].is_none() {
                continue;
            }
            if !self.trackers[idx].has_ack_eliciting_in_flight() {
                continue;
            }
            let is_app = space == PacketNumberSpace::Application;
            if is_app && !self.handshake_complete {
                continue; // app PTO only after handshake completes
            }
            if let Some(base) = self.trackers[idx].last_ack_eliciting_sent {
                let d = base + self.pto_duration_for(is_app);
                earliest = Some(earliest.map_or(d, |e| e.min(d)));
            }
        }
        // Deadlock prevention: a client with nothing in flight but an
        // unconfirmed handshake must keep probing (RFC 9002 §6.2.2.1).
        // mvfst/picoquic quirk: "receiving an instant ACK does not cause
        // the client to send probe packets" — the IACK neither re-arms the
        // timer nor shrinks it; the *default* PTO armed at the last
        // ack-eliciting send still runs (paper §4.1: their default client
        // PTO still expires in both WFC and IACK).
        if earliest.is_none() && self.role == Role::Client && !self.handshake_confirmed {
            let quirky = self.cfg.quirks.no_probe_after_iack && self.iack_received;
            if quirky {
                if let Some(base) = self.last_eliciting_send {
                    earliest = Some(base + self.pto.default_pto.mul(self.pto.backoff()));
                }
            } else if let Some(base) = self.last_activity {
                earliest = Some(base + self.pto_duration_for(false));
            }
        }
        earliest
    }

    /// Handles an expired timer at `now`.
    pub fn handle_timeout(&mut self, now: SimTime) {
        if self.closed {
            return;
        }
        // 0. Handshake give-up deadline (checked first: an expired
        // deadline makes every other timer moot).
        if let Some(gd) = self.give_up_deadline() {
            if now >= gd {
                self.give_up(now);
                return;
            }
        }
        // 1. Time-threshold loss detection.
        if let Some(lt) = self.loss_time() {
            if now >= lt {
                for space in PacketNumberSpace::ALL {
                    let idx = space.index();
                    let lost = self.trackers[idx].detect_time_lost(now, &self.rtt);
                    let largest_acked = self.largest_acked_sent_time;
                    self.on_packets_lost(now, space, &lost, &[], largest_acked);
                }
                self.log_cc_state(now);
                return;
            }
        }
        // 2. Delayed ACK flush: mark every due ACK as overdue (sent at the
        // next transmit opportunity) and clear the deadline so a blocked
        // endpoint — e.g. an amplification-limited server — does not spin
        // re-arming a timer in the past.
        if let Some(ad) = self.ack_deadline() {
            if now >= ad {
                for sp in &mut self.spaces {
                    if sp.recv.ack_pending {
                        if let Some(d) = sp.recv.ack_deadline {
                            if now >= d {
                                sp.recv.ack_deadline = None;
                                sp.recv.ack_overdue = true;
                            }
                        }
                    }
                }
                return;
            }
        }
        // 3. Path-validation retry/abandon.
        if let Some(cd) = self.path_challenge.as_ref().map(|c| c.deadline) {
            if now >= cd {
                self.on_path_challenge_timeout(now);
                return;
            }
        }
        // 4. PTO.
        if let Some(pd) = self.pto_deadline() {
            if now >= pd {
                self.on_pto(now);
                // Consecutive-PTO give-up: N expirations without forward
                // progress and the client stops probing a black hole.
                if self.role == Role::Client && !self.handshake_complete {
                    if let Some(limit) = self.cfg.give_up_pto_count {
                        if self.pto.count() >= limit {
                            self.give_up(now);
                        }
                    }
                }
            }
        }
    }

    fn on_pto(&mut self, now: SimTime) {
        // Which space does this PTO belong to? Earliest armed space wins.
        let mut target: Option<PacketNumberSpace> = None;
        let mut best: Option<SimTime> = None;
        for space in PacketNumberSpace::ALL {
            let idx = space.index();
            if self.spaces[idx].discarded || self.keys[idx].is_none() {
                continue;
            }
            if !self.trackers[idx].has_ack_eliciting_in_flight() {
                continue;
            }
            let is_app = space == PacketNumberSpace::Application;
            if is_app && !self.handshake_complete {
                continue;
            }
            if let Some(base) = self.trackers[idx].last_ack_eliciting_sent {
                let d = base + self.pto_duration_for(is_app);
                if best.map_or(true, |b| d < b) {
                    best = Some(d);
                    target = Some(space);
                }
            }
        }
        let space = target.unwrap_or({
            // Deadlock-prevention probe: Initial until handshake keys exist.
            if self.keys[1].is_some() && !self.spaces[1].discarded {
                PacketNumberSpace::Handshake
            } else {
                PacketNumberSpace::Initial
            }
        });
        let idx = space.index();
        self.pto.on_pto_expired();
        self.stats.pto_expirations += 1;
        rq_obs::obs_log!(
            "quic/pto",
            rq_obs::Level::Debug,
            "{} pto expired space={:?} count={}",
            self.cfg.name,
            space_name(space),
            self.pto.pto_count
        );
        self.log.push(
            now,
            EventData::PtoExpired {
                space: space_name(space),
                pto_count: self.pto.pto_count,
            },
        );
        // Queue probe content (RFC 9002 §6.2.4): retransmit oldest unacked
        // data when available, else PING.
        let mut queued_data = false;
        if let Some(oldest) = self.trackers[idx].oldest_ack_eliciting() {
            let token = oldest.retx_token;
            if let Some(content) = self.spaces[idx].retx.get(&token).cloned() {
                if !content.is_empty() {
                    self.spaces[idx].queue_retx(content);
                    queued_data = true;
                }
            }
        }
        if !queued_data {
            match self.cfg.probe_policy {
                ProbePolicy::Ping => {
                    self.spaces[idx].pending_pings += 1;
                }
                ProbePolicy::RetransmitOldest => {
                    if self.role == Role::Client
                        && space == PacketNumberSpace::Initial
                        && !self.initial_crypto_copy.is_empty()
                    {
                        // The paper's §5 improvement: resend the ClientHello
                        // instead of a PING so the server can recover.
                        let ch = Bytes::copy_from_slice(&self.initial_crypto_copy);
                        self.spaces[idx].queue_retx(RetxContent {
                            crypto: vec![(0, ch)],
                            ..RetxContent::default()
                        });
                    } else {
                        self.spaces[idx].pending_pings += 1;
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

/// Deterministic retry token bound to the client's source CID.
fn retry_token_for(scid: &ConnectionId) -> Vec<u8> {
    let mut t = b"retry-token:".to_vec();
    t.extend_from_slice(scid.as_slice());
    t
}

/// Wire prefix of the simulator's stateless-reset-style datagram. A real
/// stack hides the reset token in an unpredictable short-header tail
/// (RFC 9000 §10.3); the simulator only needs the *semantics* — an
/// unforgeable-in-context "I lost your state" signal — so it uses a
/// distinguished prefix no packet codec ever emits (packets start with a
/// form/type byte, never 0x00).
pub const STATELESS_RESET_PREFIX: &[u8] = b"\x00reacked:stateless-reset";
/// Wire prefix of the "server busy, go away" refusal datagram the
/// `CloseWithBackoff` overload policy answers with.
pub const SERVER_BUSY_PREFIX: &[u8] = b"\x00reacked:server-busy";

/// Builds the stateless-reset-style datagram a restarted server sends to
/// a connection it no longer remembers.
pub fn stateless_reset_datagram(orphan_cid: ConnectionId) -> Vec<u8> {
    let mut d = STATELESS_RESET_PREFIX.to_vec();
    d.extend_from_slice(orphan_cid.as_slice());
    d
}

/// Builds the busy-refusal datagram of the `CloseWithBackoff` policy.
pub fn server_busy_datagram() -> Vec<u8> {
    SERVER_BUSY_PREFIX.to_vec()
}

/// Builds a *stateless* Retry datagram for a tokenless client Initial —
/// the `RetryDefer` overload policy answers from outside any connection,
/// exactly like a production server validating addresses before
/// committing state. `client_scid` is the Initial's SCID (the token is
/// bound to it); `server_cid` becomes the Retry's SCID.
pub fn stateless_retry_datagram(client_scid: ConnectionId, server_cid: ConnectionId) -> Vec<u8> {
    let token = retry_token_for(&client_scid);
    let hdr = Header::retry(client_scid, server_cid, token);
    let pkt = PlainPacket::new(hdr, Vec::new()).expect("retry has no frames");
    pkt.to_bytes(&[0u8; 16]).to_vec()
}

/// The byte string authenticated by the packet tag: the serialized frames.
fn packet_auth_bytes(pkt: &PlainPacket) -> Vec<u8> {
    let mut buf = Vec::with_capacity(pkt.payload_len());
    for f in &pkt.frames {
        f.encode(&mut buf);
    }
    buf
}

fn space_name(space: PacketNumberSpace) -> SpaceName {
    match space {
        PacketNumberSpace::Initial => SpaceName::Initial,
        PacketNumberSpace::Handshake => SpaceName::Handshake,
        PacketNumberSpace::Application => SpaceName::ApplicationData,
    }
}

fn level_of(space: PacketNumberSpace) -> Level {
    match space {
        PacketNumberSpace::Initial => Level::Initial,
        PacketNumberSpace::Handshake => Level::Handshake,
        PacketNumberSpace::Application => Level::Application,
    }
}

fn space_of(level: Level) -> PacketNumberSpace {
    match level {
        Level::Initial => PacketNumberSpace::Initial,
        Level::Handshake => PacketNumberSpace::Handshake,
        Level::Application => PacketNumberSpace::Application,
    }
}

fn frame_summaries(frames: &[Frame]) -> Vec<FrameSummary> {
    frames
        .iter()
        .map(|f| match f {
            Frame::Padding { len } => FrameSummary {
                name: "padding",
                len: *len,
            },
            Frame::Ping => FrameSummary {
                name: "ping",
                len: 0,
            },
            Frame::Ack(_) => FrameSummary {
                name: "ack",
                len: 0,
            },
            Frame::Crypto { data, .. } => FrameSummary {
                name: "crypto",
                len: data.len(),
            },
            Frame::NewToken { token } => FrameSummary {
                name: "new_token",
                len: token.len(),
            },
            Frame::Stream { data, .. } => FrameSummary {
                name: "stream",
                len: data.len(),
            },
            Frame::MaxData { .. } => FrameSummary {
                name: "max_data",
                len: 0,
            },
            Frame::MaxStreamData { .. } => FrameSummary {
                name: "max_stream_data",
                len: 0,
            },
            Frame::MaxStreams { .. } => FrameSummary {
                name: "max_streams",
                len: 0,
            },
            Frame::DataBlocked { .. } => FrameSummary {
                name: "data_blocked",
                len: 0,
            },
            Frame::NewConnectionId { .. } => FrameSummary {
                name: "new_connection_id",
                len: 0,
            },
            Frame::RetireConnectionId { .. } => FrameSummary {
                name: "retire_connection_id",
                len: 0,
            },
            Frame::PathChallenge { .. } => FrameSummary {
                name: "path_challenge",
                len: 0,
            },
            Frame::PathResponse { .. } => FrameSummary {
                name: "path_response",
                len: 0,
            },
            Frame::ConnectionClose { .. } => FrameSummary {
                name: "connection_close",
                len: 0,
            },
            Frame::HandshakeDone => FrameSummary {
                name: "handshake_done",
                len: 0,
            },
        })
        .collect()
}

pub use crate::streams::id as stream_ids;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::id as stream_id;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    fn client() -> Connection {
        Connection::client(EndpointConfig::rfc_default(), 1, false)
    }

    fn server(ack_mode: ServerAckMode) -> Connection {
        let mut cfg = EndpointConfig::rfc_default();
        cfg.ack_mode = ack_mode;
        Connection::server(cfg, 2, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0))
    }

    /// Drives both connections through a full handshake with zero network
    /// delay and `cert_delay` between CertificateNeeded and readiness.
    fn run_handshake(
        client: &mut Connection,
        server: &mut Connection,
        cert_delay: SimDuration,
    ) -> Vec<(SimTime, &'static str)> {
        let mut timeline = Vec::new();
        let mut now = SimTime::ZERO;
        let mut cert_at: Option<SimTime> = None;
        for _step in 0..400 {
            // Exchange until quiescent at this instant (zero-delay network).
            loop {
                let mut progress = false;
                while let Some(d) = client.poll_transmit(now) {
                    server.handle_datagram(now, &d);
                    progress = true;
                }
                while let Some(ev) = server.poll_event() {
                    if matches!(ev, ConnEvent::CertificateNeeded) {
                        cert_at = Some(now + cert_delay);
                        timeline.push((now, "cert_requested"));
                    }
                    progress = true;
                }
                if let Some(t) = cert_at {
                    if now >= t {
                        server.certificate_ready(now);
                        cert_at = None;
                        timeline.push((now, "cert_ready"));
                        progress = true;
                    }
                }
                while let Some(d) = server.poll_transmit(now) {
                    client.handle_datagram(now, &d);
                    progress = true;
                }
                while let Some(ev) = client.poll_event() {
                    match ev {
                        ConnEvent::HandshakeComplete => timeline.push((now, "client_complete")),
                        ConnEvent::HandshakeConfirmed => timeline.push((now, "client_confirmed")),
                        _ => {}
                    }
                    progress = true;
                }
                if !progress {
                    break;
                }
            }
            if client.is_established()
                && server.is_established()
                && cert_at.is_none()
                && client.handshake_confirmed
            {
                break;
            }
            // Advance virtual time to the earliest pending timer and fire
            // any due timeouts.
            let next = [client.poll_timeout(), server.poll_timeout(), cert_at]
                .into_iter()
                .flatten()
                .min();
            now = next.map_or(now + ms(1), |t| t.max(now + SimDuration::from_micros(10)));
            if client.poll_timeout().map(|t| t <= now).unwrap_or(false) {
                client.handle_timeout(now);
            }
            if server.poll_timeout().map(|t| t <= now).unwrap_or(false) {
                server.handle_timeout(now);
            }
        }
        timeline
    }

    #[test]
    fn full_handshake_wfc() {
        let mut c = client();
        let mut s = server(ServerAckMode::WaitForCertificate);
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        assert!(c.is_established());
        assert!(s.is_established());
        assert!(c.handshake_confirmed);
        // WFC: no instant ACK anywhere.
        assert_eq!(
            s.log
                .count(|d| matches!(d, EventData::InstantAck { sent: true })),
            0
        );
        assert!(!c.iack_received);
    }

    #[test]
    fn full_handshake_iack() {
        let mut c = client();
        let mut s = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        run_handshake(&mut c, &mut s, ms(50));
        assert!(c.is_established());
        assert!(s.is_established());
        assert_eq!(
            s.log
                .count(|d| matches!(d, EventData::InstantAck { sent: true })),
            1
        );
        assert!(c.iack_received, "client must see the instant ACK");
    }

    #[test]
    fn iack_gives_client_early_rtt_sample() {
        // With Δt = 50 ms and zero network delay, WFC's first client RTT
        // sample is ~50 ms while IACK's is ~0 ms.
        let mut c1 = client();
        let mut s1 = server(ServerAckMode::WaitForCertificate);
        run_handshake(&mut c1, &mut s1, ms(50));
        let mut c2 = client();
        let mut s2 = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        run_handshake(&mut c2, &mut s2, ms(50));
        let wfc_first = c1
            .log
            .metrics_updates()
            .next()
            .map(|(_, s, _)| s)
            .expect("wfc client has a sample");
        let iack_first = c2
            .log
            .metrics_updates()
            .next()
            .map(|(_, s, _)| s)
            .expect("iack client has a sample");
        assert!(
            wfc_first >= 50.0,
            "WFC first sample inflated by Δt, got {wfc_first}"
        );
        assert!(
            iack_first < 10.0,
            "IACK first sample near true RTT, got {iack_first}"
        );
    }

    #[test]
    fn client_initial_datagram_padded() {
        let mut c = client();
        let d = c.poll_transmit(SimTime::ZERO).expect("client hello");
        assert!(
            d.len() >= MIN_INITIAL_DATAGRAM,
            "client Initial padded to 1200, got {}",
            d.len()
        );
    }

    #[test]
    fn server_amplification_limit_enforced_with_large_cert() {
        let mut c = client();
        let mut cfg = EndpointConfig::rfc_default().with_cert_len(rq_tls::CERT_LARGE);
        cfg.ack_mode = ServerAckMode::WaitForCertificate;
        let mut s = Connection::server(cfg, 2, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0));
        let ch = c.poll_transmit(at(0)).unwrap();
        let ch_len = ch.len();
        s.handle_datagram(at(0), &ch);
        while let Some(ev) = s.poll_event() {
            if matches!(ev, ConnEvent::CertificateNeeded) {
                s.certificate_ready(at(0));
            }
        }
        let mut sent = 0;
        while let Some(d) = s.poll_transmit(at(1)) {
            sent += d.len();
        }
        assert!(sent <= 3 * ch_len, "server sent {sent} > 3x{ch_len}");
        // The server must be blocked with data still pending.
        assert!(
            s.wants_to_send(),
            "large cert cannot fit the amplification budget"
        );
        assert!(
            s.log
                .count(|d| matches!(d, EventData::AmplificationBlocked { .. }))
                > 0
        );
    }

    #[test]
    fn client_pto_fires_and_probes() {
        let mut c = client();
        let d = c.poll_transmit(at(0)).unwrap();
        let _ = d;
        // No response: the client's (default 1000 ms) PTO must be armed.
        let deadline = c.poll_timeout().expect("pto armed");
        assert_eq!(deadline.as_millis_f64(), 1000.0);
        c.handle_timeout(deadline);
        // Probe datagram (PING, padded Initial).
        let probe = c.poll_transmit(deadline).expect("probe after pto");
        assert!(probe.len() >= MIN_INITIAL_DATAGRAM);
        // Backoff doubled.
        let second = c.poll_timeout().expect("pto rearmed");
        assert!(second.since(deadline).as_millis_f64() >= 2000.0);
    }

    #[test]
    fn pto_probe_policy_retransmit_client_hello() {
        let mut cfg = EndpointConfig::rfc_default();
        cfg.probe_policy = ProbePolicy::RetransmitOldest;
        let mut c = Connection::client(cfg, 1, false);
        let first = c.poll_transmit(at(0)).unwrap();
        let deadline = c.poll_timeout().unwrap();
        c.handle_timeout(deadline);
        let probe = c.poll_transmit(deadline).unwrap();
        // The probe datagram must carry CRYPTO (the ClientHello), like the
        // first flight, not merely a PING.
        let info = rq_wire::classify_datagram(&probe, 8).unwrap();
        assert!(info.crypto_bytes_in(PacketNumberSpace::Initial) > 0);
        let _ = first;
    }

    #[test]
    fn quirk_no_probe_after_iack_suppresses_deadlock_pto() {
        let mut cfg = EndpointConfig::rfc_default();
        cfg.quirks.no_probe_after_iack = true;
        let mut c = Connection::client(cfg, 1, false);
        let mut s = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        let ch = c.poll_transmit(at(0)).unwrap();
        s.handle_datagram(at(0), &ch);
        while let Some(ev) = s.poll_event() {
            let _ = ev; // CertificateNeeded — deliberately never fulfilled
        }
        let iack = s.poll_transmit(at(1)).expect("instant ack");
        c.handle_datagram(at(1), &iack);
        // CH is acked, handshake unconfirmed: a normal client re-arms a
        // sample-based (tiny) deadlock PTO; the quirky client keeps its
        // *default* PTO from the ClientHello send instead — the IACK does
        // not cause (earlier) probe packets.
        let deadline = c.poll_timeout().expect("default PTO still armed");
        assert_eq!(
            deadline.as_millis_f64(),
            1000.0,
            "quirky client keeps the default PTO armed at the CH send"
        );
    }

    #[test]
    fn normal_client_arms_deadlock_pto_after_iack() {
        let mut c = client();
        let mut s = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        let ch = c.poll_transmit(at(0)).unwrap();
        s.handle_datagram(at(0), &ch);
        while s.poll_event().is_some() {}
        let iack = s.poll_transmit(at(1)).expect("instant ack");
        c.handle_datagram(at(1), &iack);
        let deadline = c.poll_timeout().expect("deadlock PTO armed");
        // PTO from the IACK RTT sample (~1 ms) is far below the 1 s default.
        assert!(deadline.as_millis_f64() < 50.0, "deadline {deadline}");
    }

    #[test]
    fn padded_iack_consumes_more_budget() {
        let mut c = client();
        let ch = c.poll_transmit(at(0)).unwrap();
        let mut s1 = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        s1.handle_datagram(at(0), &ch);
        while s1.poll_event().is_some() {}
        let small = s1.poll_transmit(at(0)).unwrap();
        let mut c2 = Connection::client(EndpointConfig::rfc_default(), 1, false);
        let ch2 = c2.poll_transmit(at(0)).unwrap();
        let mut s2 = server(ServerAckMode::InstantAck { pad_to_mtu: true });
        s2.handle_datagram(at(0), &ch2);
        while s2.poll_event().is_some() {}
        let padded = s2.poll_transmit(at(0)).unwrap();
        assert!(
            small.len() < 100,
            "unpadded IACK is tiny, got {}",
            small.len()
        );
        assert_eq!(padded.len(), MIN_INITIAL_DATAGRAM);
    }

    #[test]
    fn stream_data_flows_after_handshake() {
        let mut c = client();
        let mut s = server(ServerAckMode::WaitForCertificate);
        c.send_stream_data(
            stream_id::CLIENT_BIDI_0,
            b"GET /index.html HTTP/1.1\r\n\r\n",
            true,
        );
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        // Server must have received the request (events were drained by the
        // helper, so inspect the stream state directly).
        let delivered = s
            .streams
            .recv
            .get(&stream_id::CLIENT_BIDI_0)
            .map(|r| r.delivered)
            .unwrap_or(0);
        assert!(
            delivered > 0,
            "server received the HTTP request in flight 2"
        );
    }

    #[test]
    fn conn_stats_count_handshake_traffic() {
        let mut c = client();
        let mut s = server(ServerAckMode::WaitForCertificate);
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        let (cs, ss) = (c.stats(), s.stats());
        // Zero-loss handshake: every sealed packet is opened by the peer.
        assert_eq!(cs.packets_sealed, ss.packets_opened);
        assert_eq!(ss.packets_sealed, cs.packets_opened);
        assert!(cs.packets_sealed.iter().sum::<u64>() > 0);
        assert_eq!(cs.packets_lost, 0);
        assert_eq!(cs.pto_expirations, 0);
        // The stats snapshot exports and merges like a monoid.
        let mut merged = ConnStats::default();
        merged.merge(&cs);
        merged.merge(&ss);
        let mut reg = rq_obs::Registry::default();
        merged.export("quic/", &mut reg);
        assert_eq!(
            reg.counter("quic/packets_sealed/initial"),
            cs.packets_sealed[0] + ss.packets_sealed[0]
        );
    }

    #[test]
    fn metrics_sampled_gated_off_by_default_and_throttled_when_on() {
        // Default config: no metrics_sampled events anywhere.
        let mut c = client();
        let mut s = server(ServerAckMode::WaitForCertificate);
        c.send_stream_data(stream_id::CLIENT_BIDI_0, &[0x5A; 4096], true);
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        let sampled = |conn: &Connection| {
            conn.log
                .count(|d| matches!(d, EventData::MetricsSampled { .. }))
        };
        assert_eq!(sampled(&c) + sampled(&s), 0);

        // Enabled: samples appear in the data phase, at most one per
        // cadence window.
        let mut cfg = EndpointConfig::rfc_default();
        cfg.metrics_sample_every = Some(ms(10));
        let mut c = Connection::client(cfg, 1, false);
        let mut s = server(ServerAckMode::WaitForCertificate);
        c.send_stream_data(stream_id::CLIENT_BIDI_0, &[0x5A; 4096], true);
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        assert!(sampled(&c) > 0, "client samples metrics while enabled");
        let times: Vec<f64> = c
            .log
            .events
            .iter()
            .filter(|e| matches!(e.data, EventData::MetricsSampled { .. }))
            .map(|e| e.time_ms)
            .collect();
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 10.0, "samples respect the cadence");
        }
    }

    #[test]
    fn flight2_layouts_produce_expected_datagram_counts() {
        for (layout, expected) in [(1usize, 1usize), (2, 2), (3, 3), (4, 4)] {
            let mut cfg = EndpointConfig::rfc_default();
            cfg.flight2_datagrams = layout;
            let mut c = Connection::client(cfg, 1, false);
            let mut s = server(ServerAckMode::WaitForCertificate);
            c.send_stream_data(stream_id::CLIENT_BIDI_0, b"GET / HTTP/1.1\r\n\r\n", true);
            // First flight out, server flight back, all at t=0.
            let ch = c.poll_transmit(at(0)).unwrap();
            s.handle_datagram(at(0), &ch);
            while let Some(ev) = s.poll_event() {
                if matches!(ev, ConnEvent::CertificateNeeded) {
                    s.certificate_ready(at(0));
                }
            }
            while let Some(d) = s.poll_transmit(at(0)) {
                c.handle_datagram(at(0), &d);
            }
            assert!(c.is_established());
            let mut flight2 = Vec::new();
            while let Some(d) = c.poll_transmit(at(1)) {
                flight2.push(d);
            }
            assert_eq!(
                flight2.len(),
                expected,
                "layout {layout} produced {} datagrams",
                flight2.len()
            );
        }
    }

    #[test]
    fn connection_close_propagates() {
        let mut c = client();
        let mut s = server(ServerAckMode::WaitForCertificate);
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        c.close(at(500), 0x42, "done");
        let d = c.poll_transmit(at(500)).expect("close datagram");
        s.handle_datagram(at(500), &d);
        let mut closed = false;
        while let Some(ev) = s.poll_event() {
            if let ConnEvent::Closed { error_code, .. } = ev {
                assert_eq!(error_code, 0x42);
                closed = true;
            }
        }
        assert!(closed);
        assert!(s.is_closed());
    }

    #[test]
    fn quiche_drops_coalesced_ping_reply_datagram() {
        // Build a quiche-like client, make it send a PING probe, then hand
        // it a datagram whose leading Initial packet acks that PING *and*
        // coalesces further packets: the whole datagram must be discarded
        // ("drops replies to PING frames as invalid together with
        // coalesced packets", §4.1).
        let mut cfg = EndpointConfig::rfc_default();
        cfg.quirks.drop_ping_reply_coalesced = true;
        let mut c = Connection::client(cfg, 1, false);
        let mut s = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        let ch = c.poll_transmit(at(0)).unwrap();
        s.handle_datagram(at(0), &ch);
        while s.poll_event().is_some() {}
        let iack = s.poll_transmit(at(0)).unwrap();
        c.handle_datagram(at(1), &iack);
        // Client probes (PING) after its tiny IACK-derived PTO.
        let pto = c.poll_timeout().unwrap();
        c.handle_timeout(pto);
        let probe = c.poll_transmit(pto).unwrap();
        s.handle_datagram(pto, &probe);
        // Release the certificate now: the server's next datagram coalesces
        // Initial ACK(ping)+SH with handshake packets.
        s.certificate_ready(pto);
        let flight = s.poll_transmit(pto).expect("coalesced flight");
        let info = rq_wire::classify_datagram(&flight, 8).unwrap();
        assert!(info.packets.len() > 1, "flight must be coalesced");
        assert!(info.packets[0].has_ack, "leading Initial acks the ping");
        let received_before = c
            .log
            .count(|d| matches!(d, EventData::PacketReceived { .. }));
        c.handle_datagram(pto + ms(5), &flight);
        let received_after = c
            .log
            .count(|d| matches!(d, EventData::PacketReceived { .. }));
        assert_eq!(
            received_before, received_after,
            "quiche must drop the entire coalesced ping-reply datagram"
        );
        // A well-behaved client processes the same datagram fine.
        let mut ok = Connection::client(EndpointConfig::rfc_default(), 1, false);
        let mut s2 = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        let ch2 = ok.poll_transmit(at(0)).unwrap();
        s2.handle_datagram(at(0), &ch2);
        while s2.poll_event().is_some() {}
        let iack2 = s2.poll_transmit(at(0)).unwrap();
        ok.handle_datagram(at(1), &iack2);
        let pto2 = ok.poll_timeout().unwrap();
        ok.handle_timeout(pto2);
        let probe2 = ok.poll_transmit(pto2).unwrap();
        s2.handle_datagram(pto2, &probe2);
        s2.certificate_ready(pto2);
        let flight2 = s2.poll_transmit(pto2).unwrap();
        let before = ok
            .log
            .count(|d| matches!(d, EventData::PacketReceived { .. }));
        ok.handle_datagram(pto2 + ms(5), &flight2);
        let after = ok
            .log
            .count(|d| matches!(d, EventData::PacketReceived { .. }));
        assert!(after > before, "well-behaved client processes the flight");
    }

    /// Zero-delay exchange loop capturing any ticket the client receives.
    fn exchange_until_quiet(
        c: &mut Connection,
        s: &mut Connection,
        now: SimTime,
    ) -> Option<rq_tls::SessionTicket> {
        let mut ticket = None;
        loop {
            let mut progress = false;
            while let Some(d) = c.poll_transmit(now) {
                s.handle_datagram(now, &d);
                progress = true;
            }
            while let Some(ev) = s.poll_event() {
                if matches!(ev, ConnEvent::CertificateNeeded) {
                    s.certificate_ready(now);
                }
                progress = true;
            }
            while let Some(d) = s.poll_transmit(now) {
                c.handle_datagram(now, &d);
                progress = true;
            }
            while let Some(ev) = c.poll_event() {
                if let ConnEvent::TicketReceived(t) = ev {
                    ticket = Some(t);
                }
                progress = true;
            }
            if !progress {
                break;
            }
        }
        ticket
    }

    /// Mints a ticket through a full priming handshake against a
    /// ticket-issuing server sharing `server_cfg`.
    fn mint_ticket_via_priming(server_cfg: &EndpointConfig) -> rq_tls::SessionTicket {
        let mut c = client();
        let mut s = Connection::server(
            server_cfg.clone(),
            2,
            derived_cid(1, CID_KIND_ORIGINAL_DCID, 0),
        );
        let ticket = exchange_until_quiet(&mut c, &mut s, at(0));
        assert!(c.is_established() && !c.is_resumed());
        ticket.expect("priming connection must yield a ticket")
    }

    fn resuming_server_cfg(accept_early: bool) -> EndpointConfig {
        let mut cfg = EndpointConfig::rfc_default();
        cfg.ack_mode = ServerAckMode::WaitForCertificate;
        cfg.resumption = if accept_early {
            rq_tls::ServerResumption::accepting(7200)
        } else {
            rq_tls::ServerResumption::rejecting_early_data(7200)
        };
        cfg
    }

    #[test]
    fn zero_rtt_request_delivered_before_handshake_completes() {
        let server_cfg = resuming_server_cfg(true);
        let ticket = mint_ticket_via_priming(&server_cfg);

        let mut cfg = EndpointConfig::rfc_default();
        cfg.session_ticket = Some(ticket);
        cfg.enable_early_data = true;
        let mut c = Connection::client(cfg, 1, false);
        c.send_stream_data(stream_id::CLIENT_BIDI_0, b"GET / HTTP/1.1\r\n\r\n", true);
        let mut s = Connection::server(server_cfg, 3, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0));

        // The first flight carries Initial(CH) coalesced with a 0-RTT
        // packet carrying the request.
        let first = c.poll_transmit(at(0)).expect("first flight");
        let info = rq_wire::classify_datagram(&first, 8).unwrap();
        assert!(info
            .packets
            .iter()
            .any(|p| p.ty == rq_wire::PacketType::ZeroRtt));
        assert!(first.len() >= MIN_INITIAL_DATAGRAM);
        s.handle_datagram(at(0), &first);
        // The server delivers the early request before any return flight
        // and without ever asking for the certificate.
        let mut got_request = false;
        let mut cert_needed = false;
        while let Some(ev) = s.poll_event() {
            match ev {
                ConnEvent::StreamData { id, data, .. } => {
                    got_request |= id == stream_id::CLIENT_BIDI_0 && !data.is_empty();
                }
                ConnEvent::CertificateNeeded => cert_needed = true,
                _ => {}
            }
        }
        assert!(got_request, "0-RTT request delivered from the first flight");
        assert!(!cert_needed, "resumed handshakes skip the cert store");
        assert_eq!(s.early_data_accepted(), Some(true));

        // Finish the handshake: both sides resumed, early data accepted.
        exchange_until_quiet(&mut c, &mut s, at(1));
        assert!(c.is_established() && s.is_established());
        assert!(c.is_resumed() && s.is_resumed());
        assert_eq!(c.early_data_accepted(), Some(true));
    }

    #[test]
    fn rejected_early_data_is_retransmitted_as_one_rtt() {
        let server_cfg = resuming_server_cfg(false);
        let ticket = mint_ticket_via_priming(&server_cfg);

        let mut cfg = EndpointConfig::rfc_default();
        cfg.session_ticket = Some(ticket);
        cfg.enable_early_data = true;
        let mut c = Connection::client(cfg, 1, false);
        c.send_stream_data(stream_id::CLIENT_BIDI_0, b"GET / HTTP/1.1\r\n\r\n", true);
        let mut s = Connection::server(server_cfg, 3, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0));

        exchange_until_quiet(&mut c, &mut s, at(0));
        assert!(c.is_established() && c.is_resumed());
        assert_eq!(c.early_data_accepted(), Some(false));
        assert_eq!(s.early_data_accepted(), Some(false));
        // The server still received the whole request — resent under
        // 1-RTT keys after the reject.
        let delivered = s
            .streams
            .recv
            .get(&stream_id::CLIENT_BIDI_0)
            .map(|r| r.delivered)
            .unwrap_or(0);
        assert_eq!(delivered as usize, b"GET / HTTP/1.1\r\n\r\n".len());
    }

    #[test]
    fn resumed_handshake_without_early_data_still_abbreviated() {
        let server_cfg = resuming_server_cfg(true);
        let ticket = mint_ticket_via_priming(&server_cfg);
        let mut cfg = EndpointConfig::rfc_default();
        cfg.session_ticket = Some(ticket);
        cfg.enable_early_data = false;
        let mut c = Connection::client(cfg, 1, false);
        let mut s = Connection::server(server_cfg, 3, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0));
        let fresh = exchange_until_quiet(&mut c, &mut s, at(0));
        assert!(c.is_resumed() && s.is_resumed());
        assert_eq!(c.early_data_accepted(), None, "early data never offered");
        assert!(fresh.is_some(), "resumed handshakes re-issue tickets");
    }

    #[test]
    fn ticket_from_wrong_server_key_falls_back_to_full_handshake() {
        let server_cfg = resuming_server_cfg(true);
        let ticket = mint_ticket_via_priming(&server_cfg);
        let mut cfg = EndpointConfig::rfc_default();
        cfg.session_ticket = Some(ticket);
        cfg.enable_early_data = true;
        let mut c = Connection::client(cfg, 1, false);
        let mut other = server_cfg;
        other.ticket_key ^= 0xDEAD;
        let mut s = Connection::server(other, 3, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0));
        exchange_until_quiet(&mut c, &mut s, at(0));
        assert!(c.is_established() && s.is_established());
        assert!(!c.is_resumed() && !s.is_resumed());
        assert_eq!(c.early_data_accepted(), Some(false));
    }

    #[test]
    fn server_rtt_sample_absent_under_iack_before_handshake_ack() {
        // The Figure 6 mechanic: the IACK is not ack-eliciting, so the
        // server holds no RTT sample until the client acks a CRYPTO packet.
        let mut c = client();
        let mut s = server(ServerAckMode::InstantAck { pad_to_mtu: false });
        let ch = c.poll_transmit(at(0)).unwrap();
        s.handle_datagram(at(5), &ch);
        while let Some(ev) = s.poll_event() {
            let _ = ev;
        }
        let iack = s.poll_transmit(at(5)).unwrap();
        c.handle_datagram(at(10), &iack);
        // Client probes after its (now tiny) PTO; server receives the PING
        // and still has no RTT sample: pure ACKs acked give none.
        let pto = c.poll_timeout().unwrap();
        c.handle_timeout(pto);
        let probe = c.poll_transmit(pto).unwrap();
        s.handle_datagram(pto + ms(5), &probe);
        assert_eq!(
            s.rtt().sample_count(),
            0,
            "server must have no RTT sample under IACK"
        );
    }

    // ------------------------------------------------------------------
    // Connection migration
    // ------------------------------------------------------------------

    fn migration_pair() -> (Connection, Connection) {
        let mut ccfg = EndpointConfig::rfc_default();
        ccfg.cid_pool = 2;
        let mut scfg = EndpointConfig::rfc_default();
        scfg.cid_pool = 2;
        let c = Connection::client(ccfg, 1, false);
        let s = Connection::server(scfg, 2, derived_cid(1, CID_KIND_ORIGINAL_DCID, 0));
        (c, s)
    }

    /// Zero-delay exchange where every datagram is delivered on `path`,
    /// until quiescent.
    fn pump_on_path(c: &mut Connection, s: &mut Connection, now: SimTime, path: u64) {
        loop {
            let mut progress = false;
            while let Some(d) = c.poll_transmit(now) {
                s.handle_datagram_on_path(now, &d, path);
                progress = true;
            }
            while let Some(d) = s.poll_transmit(now) {
                c.handle_datagram_on_path(now, &d, path);
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }

    #[test]
    fn cid_derivation_is_collision_free() {
        // The old XOR scheme could collide across kinds/seeds; coordinate
        // hashing must keep every (seed, kind, seq) CID distinct.
        let mut seen = std::collections::HashSet::new();
        for seed in [0u64, 1, 2, 0xC11E_57, 0x5E11_E5] {
            for kind in [
                CID_KIND_CLIENT,
                CID_KIND_ORIGINAL_DCID,
                CID_KIND_SERVER,
                CID_KIND_RETRY,
            ] {
                for seq in 0..8u64 {
                    assert!(
                        seen.insert(derived_cid(seed, kind, seq)),
                        "collision at seed={seed:#x} kind={kind} seq={seq}"
                    );
                }
            }
        }
    }

    #[test]
    fn cid_pool_announced_after_handshake() {
        let (mut c, mut s) = migration_pair();
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        assert_eq!(c.spare_peer_cids(), 2, "server pool not banked at client");
        assert_eq!(s.spare_peer_cids(), 2, "client pool not banked at server");
        // The spares are exactly the derivable pool CIDs.
        assert_eq!(c.peer_cid_pool[0].1, derived_cid(2, CID_KIND_SERVER, 1));
        assert_eq!(s.peer_cid_pool[1].1, derived_cid(1, CID_KIND_CLIENT, 2));
    }

    #[test]
    fn cid_pool_disabled_changes_nothing() {
        let mut c = client();
        let mut s = server(ServerAckMode::WaitForCertificate);
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        assert_eq!(c.spare_peer_cids(), 0);
        assert_eq!(s.spare_peer_cids(), 0);
        assert_eq!(
            c.log
                .count(|d| matches!(d, EventData::MigrationStarted { .. })),
            0
        );
    }

    #[test]
    fn deliberate_migration_rotates_cid_and_validates_path() {
        let (mut c, mut s) = migration_pair();
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        let old_dcid = c.peer_cid;
        let now = at(500);
        c.migrate(now, 7);
        assert_ne!(c.peer_cid, old_dcid, "DCID must rotate on migration");
        assert_eq!(c.peer_cid, derived_cid(2, CID_KIND_SERVER, 1));
        assert!(c.path_validation_pending());
        pump_on_path(&mut c, &mut s, now, 7);
        // Both directions validated: client probed, server counter-probed.
        assert!(
            c.path_state(7).unwrap().validated,
            "client path unvalidated"
        );
        assert!(
            s.path_state(7).unwrap().validated,
            "server path unvalidated"
        );
        assert_eq!(s.active_path(), 7);
        assert!(!c.path_validation_pending());
        assert_eq!(
            c.log.count(|d| matches!(
                d,
                EventData::MigrationStarted {
                    deliberate: true,
                    ..
                }
            )),
            1
        );
        assert_eq!(
            s.log.count(|d| matches!(
                d,
                EventData::MigrationStarted {
                    deliberate: false,
                    ..
                }
            )),
            1
        );
        // The old client DCID was retired at the server.
        assert_eq!(
            s.log
                .count(|d| matches!(d, EventData::CidRetired { seq: 0 })),
            1
        );
    }

    #[test]
    fn unvalidated_path_is_amplification_limited() {
        let (mut c, mut s) = migration_pair();
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        let now = at(500);
        c.migrate(now, 3);
        // Deliver exactly one client datagram on the new path, then stop.
        let d = c.poll_transmit(now).expect("challenge datagram");
        s.handle_datagram_on_path(now, &d, 3);
        let p = s.path_state(3).expect("server must track the new path");
        assert!(!p.validated);
        assert_eq!(
            s.amplification_budget(),
            3 * d.len(),
            "unvalidated new path must be 3x-limited like a fresh Initial"
        );
        // Server sends never exceed the per-path budget while unvalidated.
        let mut sent = 0usize;
        while let Some(out) = s.poll_transmit(now) {
            sent += out.len();
        }
        assert!(
            sent <= 3 * d.len(),
            "server overshot: {sent} > {}",
            3 * d.len()
        );
    }

    #[test]
    fn path_validation_abandons_after_retries() {
        let (mut c, mut s) = migration_pair();
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        let mut now = at(500);
        c.migrate(now, 9);
        // Black-hole every datagram: drain transmits, fire each deadline.
        for _ in 0..16 {
            while c.poll_transmit(now).is_some() {}
            if !c.path_validation_pending() {
                break;
            }
            let deadline = c.poll_timeout().expect("challenge deadline armed");
            now = now.max(deadline);
            c.handle_timeout(now);
        }
        assert!(!c.path_validation_pending(), "validation must terminate");
        assert!(c.path_state(9).unwrap().abandoned);
        assert_eq!(
            c.log
                .count(|d| matches!(d, EventData::PathAbandoned { path: 9 })),
            1
        );
        assert_eq!(
            c.log
                .count(|d| matches!(d, EventData::PathChallengeSent { .. })),
            1 + PATH_CHALLENGE_MAX_RETRIES as usize
        );
    }

    #[test]
    fn nat_rebind_without_notification_revalidates() {
        // NAT rebind: the client keeps sending, oblivious; the simulator
        // just delivers its packets on a new path id. The server must
        // notice, probe, and carry on.
        let (mut c, mut s) = migration_pair();
        run_handshake(&mut c, &mut s, SimDuration::ZERO);
        let now = at(500);
        c.send_stream_data(stream_id::CLIENT_BIDI_0, b"hello after rebind", true);
        pump_on_path(&mut c, &mut s, now, 4);
        assert_eq!(s.active_path(), 4);
        assert!(s.path_state(4).unwrap().validated);
        assert_eq!(
            s.log.count(|d| matches!(
                d,
                EventData::MigrationStarted {
                    deliberate: false,
                    ..
                }
            )),
            1
        );
    }
}
