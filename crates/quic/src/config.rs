//! Endpoint configuration: every behaviour knob the paper varies.
//!
//! `rq-profiles` builds one [`EndpointConfig`] per emulated implementation;
//! the connection state machine reads these knobs and nothing else, so the
//! protocol core stays implementation-agnostic.

use rq_sim::SimDuration;

/// How the server acknowledges the client Initial while the certificate is
/// being fetched (the paper's central dichotomy, Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerAckMode {
    /// Wait for certificate: the first server datagram is the coalesced
    /// ACK + ServerHello after Δt.
    WaitForCertificate,
    /// Instant ACK: a pure-ACK Initial datagram is sent immediately on
    /// ClientHello receipt; the ServerHello follows after Δt.
    InstantAck {
        /// Pad the instant ACK to a full 1200-byte datagram (Cloudflare
        /// uses padded IACKs to probe the path MTU; paper §5 discusses the
        /// amplification cost).
        pad_to_mtu: bool,
    },
}

impl ServerAckMode {
    /// Short label used in experiment tables ("WFC" / "IACK").
    pub fn label(&self) -> &'static str {
        match self {
            ServerAckMode::WaitForCertificate => "WFC",
            ServerAckMode::InstantAck { .. } => "IACK",
        }
    }
}

/// What a client sends when its PTO fires during the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbePolicy {
    /// Send a PING frame (what the measured stacks do; paper §5 notes this
    /// gives the server no retransmitted information).
    #[default]
    Ping,
    /// Retransmit the oldest unacked data (ClientHello during the
    /// handshake) — the RFC-recommended and paper-suggested improvement.
    RetransmitOldest,
}

/// How a server reports the `ACK Delay` field (paper Table 3: six stacks
/// report 0, others report real or even inflated values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckDelayReport {
    /// Report the actual host delay.
    #[default]
    Actual,
    /// Always report zero.
    Zero,
    /// Report a fixed value regardless of the actual delay.
    Fixed(SimDuration),
}

/// Client-side behavioural quirks observed in the paper (§4, App. E/F).
/// All default to "well-behaved".
#[derive(Debug, Clone, Default)]
pub struct ClientQuirks {
    /// go-x-net: with this set, the RTT estimator pretends `Some(d)` was
    /// already installed as smoothed RTT, so the first sample blends
    /// instead of initializing ("smoothed RTT is initialized at 90 ms").
    pub buggy_rtt_preinit: Option<SimDuration>,
    /// Probability (0..1) that `buggy_rtt_preinit` applies to a given run
    /// (go-x-net only misbehaves in part of its measurements).
    pub buggy_rtt_probability: f64,
    /// aioquic: non-standard rttvar update order.
    pub aioquic_rttvar: bool,
    /// mvfst / picoquic: receiving an instant ACK does not cause the client
    /// to arm the deadlock-prevention PTO, so no probe packets are sent in
    /// response to an IACK (paper §4.1).
    pub no_probe_after_iack: bool,
    /// picoquic: the handshake-time PTO "relies solely on its default
    /// PTO" — early RTT samples (including the one carried by an instant
    /// ACK) do not shorten it, so picoquic shows no IACK benefit and no
    /// IACK penalty in the loss scenarios (paper §4.2 / App. F).
    pub ignore_iack_rtt: bool,
    /// quiche (HTTP/1.1): drop the first datagram whose Initial packet
    /// acknowledges one of our PING probes, together with everything
    /// coalesced behind it ("drops replies to PING frames as invalid
    /// together with coalesced packets", §4.1).
    pub drop_ping_reply_coalesced: bool,
    /// quiche (HTTP/1.1): abort the connection (duplicate connection-ID
    /// retirement) when, after having received an instant ACK, a
    /// *network-retransmitted* server Initial CRYPTO packet arrives
    /// (pn ≥ 2 with fresh offset-0 crypto and no self-inflicted drop).
    /// Emulates the duplicate-CID-retirement abort of §4.2/App. F.
    pub abort_on_initial_retransmit_after_iack: bool,
}

/// Endpoint configuration.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Default (pre-RTT-sample) PTO. Paper Table 4; RFC recommends 1 s.
    pub default_pto: SimDuration,
    /// `max_ack_delay` transport parameter advertised to the peer.
    pub max_ack_delay: SimDuration,
    /// Number of UDP datagrams the client's second flight is spread over
    /// (paper Table 4: 1 for quiche, 2 for neqo, 3 for most, 4 for
    /// picoquic).
    pub flight2_datagrams: usize,
    /// Client probe-content policy on PTO.
    pub probe_policy: ProbePolicy,
    /// Server ACK mode (ignored by clients).
    pub ack_mode: ServerAckMode,
    /// How ACK Delay is reported in Initial-space ACKs (Table 3).
    pub ack_delay_report: AckDelayReport,
    /// Override for Handshake-space ACK delay reporting (Table 3 servers
    /// report different values per space); falls back to
    /// `ack_delay_report` when `None`.
    pub handshake_ack_delay_report: Option<AckDelayReport>,
    /// Server sends a Handshake-space ACK for the client Finished before
    /// discarding the space (haproxy, lsquic, mvfst, neqo, xquic in
    /// Table 3; most stacks discard first and never ACK there).
    pub send_handshake_space_acks: bool,
    /// Never attach ACK frames in the Initial/Handshake spaces (msquic in
    /// Table 3 "does not send Initial and Handshake ACKs").
    pub no_initial_acks: bool,
    /// Total certificate-message size (server; paper: 1,212 or 5,113 B).
    pub cert_len: usize,
    /// Client quirks.
    pub quirks: ClientQuirks,
    /// Application-space ACK threshold: send an ACK after this many
    /// ack-eliciting packets (2 is the RFC-recommended behaviour).
    pub ack_eliciting_threshold: usize,
    /// Client: session ticket to offer for an abbreviated handshake.
    pub session_ticket: Option<rq_tls::SessionTicket>,
    /// Client: send queued stream data as 0-RTT early data with the
    /// ticket (ignored without `session_ticket`).
    pub enable_early_data: bool,
    /// Server: resumption policy (ticket issuance, PSK and 0-RTT
    /// acceptance; disabled by default so full-handshake traces keep
    /// their exact wire image).
    pub resumption: rq_tls::ServerResumption,
    /// Server: key minting/validating stateless session tickets — the
    /// same key must serve the priming and the resumed connection.
    pub ticket_key: u64,
    /// Server: additional ticket keys accepted for validation (the
    /// overlap window of a rotating [`rq_tls::TicketKeySchedule`]); empty
    /// for the legacy single-key server.
    pub accept_ticket_keys: Vec<u64>,
    /// Client: abandon the handshake this long after the first Initial
    /// leaves, closing with [`crate::connection::ERROR_GIVE_UP`]. `None`
    /// (the default) waits forever, like every stack in the paper's
    /// testbed — existing traces are untouched.
    pub give_up_after: Option<SimDuration>,
    /// Client: abandon the handshake after this many *consecutive* PTO
    /// expirations (reset on forward progress). `None` disables the
    /// PTO-count give-up.
    pub give_up_pto_count: Option<u32>,
    /// Congestion controller for the data phase (NewReno keeps the
    /// handshake-era traces byte-identical; CUBIC/BBR-lite are the
    /// transfer-sweep alternatives).
    pub cc_algorithm: rq_recovery::CcAlgorithm,
    /// Initial connection-level flow control credit offered to the peer.
    pub initial_max_data: u64,
    /// Initial per-stream flow control credit.
    pub initial_max_stream_data: u64,
    /// Number of spare connection IDs announced via NEW_CONNECTION_ID
    /// once the handshake completes — the pool the peer rotates through
    /// on migration (RFC 9000 §5.1.1). 0 (the default) disables the
    /// whole migration machinery and keeps legacy traces byte-identical.
    pub cid_pool: usize,
    /// Emit a qlog `metrics_sampled` event (cwnd / bytes-in-flight /
    /// srtt) at most this often while processing Application-space ACKs
    /// after the handshake completes. `None` (the default) emits
    /// nothing, keeping every legacy trace byte-identical.
    pub metrics_sample_every: Option<SimDuration>,
    /// Label for logs/plots ("quic-go", "neqo", ...).
    pub name: &'static str,
}

impl EndpointConfig {
    /// A well-behaved RFC-default endpoint.
    pub fn rfc_default() -> Self {
        EndpointConfig {
            default_pto: SimDuration::from_millis(1000),
            max_ack_delay: SimDuration::from_millis(25),
            flight2_datagrams: 3,
            probe_policy: ProbePolicy::Ping,
            ack_mode: ServerAckMode::WaitForCertificate,
            ack_delay_report: AckDelayReport::Actual,
            handshake_ack_delay_report: None,
            send_handshake_space_acks: false,
            no_initial_acks: false,
            cert_len: rq_tls::CERT_SMALL,
            quirks: ClientQuirks::default(),
            ack_eliciting_threshold: 2,
            session_ticket: None,
            enable_early_data: false,
            resumption: rq_tls::ServerResumption::disabled(),
            ticket_key: 0x7E11_C3E7,
            accept_ticket_keys: Vec::new(),
            give_up_after: None,
            give_up_pto_count: None,
            cc_algorithm: rq_recovery::CcAlgorithm::NewReno,
            // Receive windows sized like real stacks (hundreds of KiB):
            // large transfers then require a steady stream of MAX_DATA /
            // MAX_STREAM_DATA grants — the ack-eliciting client packets
            // behind Figure 11's RTT-sample counts.
            initial_max_data: 512 * 1024,
            initial_max_stream_data: 256 * 1024,
            cid_pool: 0,
            metrics_sample_every: None,
            name: "rfc-default",
        }
    }

    /// Switches the server to instant-ACK mode.
    pub fn with_instant_ack(mut self, pad_to_mtu: bool) -> Self {
        self.ack_mode = ServerAckMode::InstantAck { pad_to_mtu };
        self
    }

    /// Sets the certificate size.
    pub fn with_cert_len(mut self, len: usize) -> Self {
        self.cert_len = len;
        self
    }

    /// Sets the server-side resumption policy.
    pub fn with_resumption(mut self, resumption: rq_tls::ServerResumption) -> Self {
        self.resumption = resumption;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ServerAckMode::WaitForCertificate.label(), "WFC");
        assert_eq!(
            ServerAckMode::InstantAck { pad_to_mtu: false }.label(),
            "IACK"
        );
    }

    #[test]
    fn builder_helpers() {
        let cfg = EndpointConfig::rfc_default()
            .with_instant_ack(true)
            .with_cert_len(rq_tls::CERT_LARGE);
        assert_eq!(cfg.ack_mode, ServerAckMode::InstantAck { pad_to_mtu: true });
        assert_eq!(cfg.cert_len, rq_tls::CERT_LARGE);
    }
}
