//! Shared server-side state for many concurrent connections.
//!
//! [`Connection`] is deliberately per-connection: it knows one peer, one
//! handshake, one request. A production QUIC terminator, though, hosts
//! thousands of those behind one listener that shares a ticket-key
//! schedule, a CPU budget, and a concurrency ceiling — the regime where
//! the paper's WFC/IACK trade-off turns into a server-cost question
//! (stateless instant ACKs are cheap; certificate flights and full
//! handshakes are not). [`ServerEngine`] is that shared layer: it accepts
//! or sheds incoming Initials, derives each connection's ticket keys from
//! the rotating [`TicketKeySchedule`] at accept time, and folds per-class
//! handshake costs and queue-depth observations into a mergeable
//! [`ServerAccounting`].
//!
//! Everything here is deterministic: admission depends only on the
//! current active count, keys only on the schedule and the accept time,
//! so a sharded simulation reproduces one big server exactly.

use std::collections::HashMap;

use rq_qlog::{EventData, EventLog};
use rq_sim::SimTime;
use rq_tls::TicketKeySchedule;
use rq_wire::ConnectionId;

use crate::config::EndpointConfig;
use crate::connection::{derived_cid, Connection, CID_KIND_SERVER};

/// Relative CPU cost of completing each handshake class, in units of one
/// full handshake. The asymmetric signature + key exchange dominates a
/// full handshake; PSK resumption replaces it with symmetric crypto, and
/// an accepted 0-RTT handshake adds early-data key derivation on top of
/// the PSK path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerCostModel {
    /// Full 1-RTT handshake (certificate + CertificateVerify).
    pub full: f64,
    /// Abbreviated PSK handshake.
    pub resumed: f64,
    /// PSK handshake with accepted 0-RTT early data.
    pub zero_rtt: f64,
}

impl Default for ServerCostModel {
    fn default() -> Self {
        ServerCostModel {
            full: 1.0,
            resumed: 0.3,
            zero_rtt: 0.35,
        }
    }
}

/// Server-side aggregates across a connection population. Plain sums and
/// maxima, so shard accountings [`merge`](ServerAccounting::merge) into
/// the whole-server numbers in any grouping (the monoid the sharded
/// `run_server_load` fold relies on).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerAccounting {
    /// Initials that reached the listener (accepted + shed).
    pub arrivals: u64,
    /// Connections admitted.
    pub accepted: u64,
    /// Connections refused by the concurrency limit.
    pub shed: u64,
    /// Admitted connections retired as completed.
    pub completed: u64,
    /// Admitted connections retired without completing.
    pub failed: u64,
    /// Completed handshakes per class.
    pub full_handshakes: u64,
    /// Abbreviated (PSK) handshakes.
    pub resumed_handshakes: u64,
    /// Resumed handshakes that also accepted 0-RTT early data.
    pub zero_rtt_accepted: u64,
    /// Total handshake CPU cost, in full-handshake units.
    pub cpu_cost: f64,
    /// Highest concurrent-connection count observed.
    pub peak_active: u64,
    /// Sum of the active-connection count sampled at every arrival
    /// (the server's queue depth as new work shows up).
    pub depth_sum: u64,
    /// Number of depth samples (== arrivals).
    pub depth_samples: u64,
    /// Retired connections that hit the anti-amplification limit.
    pub amp_blocked_conns: u64,
    /// Arrivals answered with a stateless Retry because the server was
    /// at its limit (`RetryDefer` policy).
    pub retry_deferred: u64,
    /// Deferred arrivals later admitted with a valid token.
    pub retry_admitted: u64,
    /// Arrivals refused with an explicit busy close
    /// (`CloseWithBackoff` policy).
    pub busy_refused: u64,
    /// Server crash/restart events.
    pub crashes: u64,
    /// Connections whose state a crash dropped mid-flight.
    pub reset_conns: u64,
}

impl ServerAccounting {
    /// Folds another accounting into this one (shard merge).
    pub fn merge(&mut self, other: &ServerAccounting) {
        self.arrivals += other.arrivals;
        self.accepted += other.accepted;
        self.shed += other.shed;
        self.completed += other.completed;
        self.failed += other.failed;
        self.full_handshakes += other.full_handshakes;
        self.resumed_handshakes += other.resumed_handshakes;
        self.zero_rtt_accepted += other.zero_rtt_accepted;
        self.cpu_cost += other.cpu_cost;
        self.peak_active = self.peak_active.max(other.peak_active);
        self.depth_sum += other.depth_sum;
        self.depth_samples += other.depth_samples;
        self.amp_blocked_conns += other.amp_blocked_conns;
        self.retry_deferred += other.retry_deferred;
        self.retry_admitted += other.retry_admitted;
        self.busy_refused += other.busy_refused;
        self.crashes += other.crashes;
        self.reset_conns += other.reset_conns;
    }

    /// Exports every counter into `reg` under `prefix` (no separator is
    /// added — pass e.g. `"server/"`). `cpu_cost` is scaled to integer
    /// milli-units so the registry stays a pure integer monoid; the
    /// active-connection peak is exported by
    /// [`ServerEngine::export_metrics`], which also knows the current
    /// level.
    pub fn export(&self, prefix: &str, reg: &mut rq_obs::Registry) {
        reg.add(&format!("{prefix}arrivals"), self.arrivals);
        reg.add(&format!("{prefix}accepted"), self.accepted);
        reg.add(&format!("{prefix}shed"), self.shed);
        reg.add(&format!("{prefix}completed"), self.completed);
        reg.add(&format!("{prefix}failed"), self.failed);
        reg.add(&format!("{prefix}full_handshakes"), self.full_handshakes);
        reg.add(
            &format!("{prefix}resumed_handshakes"),
            self.resumed_handshakes,
        );
        reg.add(
            &format!("{prefix}zero_rtt_accepted"),
            self.zero_rtt_accepted,
        );
        reg.add(
            &format!("{prefix}cpu_cost_milli"),
            (self.cpu_cost * 1000.0).round() as u64,
        );
        reg.add(
            &format!("{prefix}amp_blocked_conns"),
            self.amp_blocked_conns,
        );
        reg.add(&format!("{prefix}retry_deferred"), self.retry_deferred);
        reg.add(&format!("{prefix}retry_admitted"), self.retry_admitted);
        reg.add(&format!("{prefix}busy_refused"), self.busy_refused);
        reg.add(&format!("{prefix}crashes"), self.crashes);
        reg.add(&format!("{prefix}reset_conns"), self.reset_conns);
    }

    /// Mean active-connection count seen by arriving work.
    pub fn mean_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }
}

/// What an overloaded server does with an Initial it has no slot for.
///
/// The paper's load engine knew exactly one answer — drop it (`Shed`).
/// Production terminators have two more: answer with a stateless Retry
/// so the client validates its address now and re-knocks with a token
/// (`RetryDefer` — the Retry round trip doubles as an early RTT sample,
/// §5), or refuse explicitly so the client backs off and reconnects
/// later (`CloseWithBackoff`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Drop the Initial statelessly; the client times out or gives up.
    #[default]
    Shed,
    /// Answer with a stateless Retry: no state is committed, the client
    /// gets a token (and an RTT sample) and keeps knocking until a slot
    /// frees — a cheap admission valve instead of a hard drop.
    RetryDefer,
    /// Answer with an explicit busy refusal; the client's reconnect
    /// policy (jittered exponential backoff) decides when to try again.
    CloseWithBackoff,
}

impl OverloadPolicy {
    /// Label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            OverloadPolicy::Shed => "shed",
            OverloadPolicy::RetryDefer => "retry-defer",
            OverloadPolicy::CloseWithBackoff => "close-backoff",
        }
    }
}

/// Admission decision for one arriving Initial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptOutcome {
    /// A connection state machine was created.
    Accepted,
    /// Load shed: over the concurrency limit, the Initial is dropped
    /// statelessly (the cheapest thing a server can do with it).
    Shed,
    /// Over the limit under [`OverloadPolicy::RetryDefer`]: answer with
    /// a stateless Retry (tokenless arrivals) or keep the deferred
    /// client knocking (tokened revisits) — no state committed yet.
    RetryDefer,
    /// Over the limit under [`OverloadPolicy::CloseWithBackoff`]: answer
    /// with an explicit busy refusal.
    Busy,
}

struct ConnSlot {
    conn: Connection,
    costed: bool,
}

/// One server's shared state: the connection table, the admission policy,
/// the ticket-key schedule, and the cost accounting.
///
/// Connections are addressed by an opaque `u64` key chosen by the caller
/// (the testbed uses the peer's sim `NodeId` index — QUIC's "demux by
/// connection ID" collapsed to its essence).
pub struct ServerEngine {
    template: EndpointConfig,
    schedule: TicketKeySchedule,
    /// Cost per completed handshake, by class.
    pub cost_model: ServerCostModel,
    concurrency_limit: usize,
    /// What to do with arrivals beyond the limit.
    pub overload: OverloadPolicy,
    conns: HashMap<u64, ConnSlot>,
    /// Demux by connection ID: every CID a connection has announced (or
    /// will announce — the pool is derivable at accept time) maps to its
    /// table key, so a migrated client is routed to its existing state
    /// even when its 4-tuple (sim `NodeId` + path) changed. Empty when
    /// the template's `cid_pool` is 0.
    cid_index: HashMap<u64, u64>,
    /// Running aggregates.
    pub accounting: ServerAccounting,
    /// Listener-level qlog events (crashes — things no single
    /// connection's log can own).
    pub log: EventLog,
}

impl ServerEngine {
    /// A server handing each accepted connection a copy of `template`
    /// (with the schedule's epoch keys patched in) and shedding arrivals
    /// beyond `concurrency_limit` active connections.
    pub fn new(
        template: EndpointConfig,
        schedule: TicketKeySchedule,
        concurrency_limit: usize,
    ) -> Self {
        ServerEngine {
            template,
            schedule,
            cost_model: ServerCostModel::default(),
            concurrency_limit: concurrency_limit.max(1),
            overload: OverloadPolicy::Shed,
            conns: HashMap::new(),
            cid_index: HashMap::new(),
            accounting: ServerAccounting::default(),
            log: EventLog::new("server:engine".to_string()),
        }
    }

    /// Replaces the overload admission policy (default: hard shed).
    pub fn with_overload_policy(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// The ticket-key schedule connections are minted under.
    pub fn schedule(&self) -> TicketKeySchedule {
        self.schedule
    }

    /// Currently active connections.
    pub fn active(&self) -> usize {
        self.conns.len()
    }

    /// Exports the engine's admission accounting plus an
    /// active-connection gauge (current level, observed peak) into `reg`
    /// under `prefix`.
    pub fn export_metrics(&self, prefix: &str, reg: &mut rq_obs::Registry) {
        self.accounting.export(prefix, reg);
        reg.gauge(
            &format!("{prefix}active_conns"),
            self.conns.len() as i64,
            self.accounting.peak_active as i64,
        );
    }

    /// Whether `key` has an active connection.
    pub fn has_conn(&self, key: u64) -> bool {
        self.conns.contains_key(&key)
    }

    /// Looks up the connection owning `cid` (any CID from its announced
    /// pool, current or spare). `None` for unknown CIDs or when the
    /// engine's template doesn't issue CID pools.
    pub fn key_for_cid(&self, cid: &ConnectionId) -> Option<u64> {
        self.cid_index.get(&cid_u64(cid)).copied()
    }

    /// Keys of all active connections, sorted — the only safe way to
    /// iterate the table for side effects (raw `HashMap` order would
    /// leak nondeterminism into the event stream).
    pub fn active_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.conns.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Admits or refuses a new connection whose first datagram carried
    /// `original_dcid`. `now_secs` (virtual seconds) selects the ticket
    /// key epoch the connection mints and accepts under.
    ///
    /// `has_token` marks an Initial carrying a Retry token; `revisit`
    /// marks a re-knock from a client this engine already answered with
    /// a Retry (deferred admission) — revisits don't count as new
    /// arrivals or depth samples.
    pub fn accept(
        &mut self,
        key: u64,
        conn_seed: u64,
        original_dcid: ConnectionId,
        now_secs: u64,
        has_token: bool,
        revisit: bool,
    ) -> AcceptOutcome {
        let depth = self.conns.len() as u64;
        if !revisit {
            self.accounting.arrivals += 1;
            self.accounting.depth_sum += depth;
            self.accounting.depth_samples += 1;
        }
        if self.conns.len() >= self.concurrency_limit {
            return match self.overload {
                OverloadPolicy::Shed => {
                    self.accounting.shed += 1;
                    rq_obs::obs_log!(
                        "quic/server",
                        rq_obs::Level::Info,
                        "shed arrival key={key} at depth={depth}"
                    );
                    AcceptOutcome::Shed
                }
                OverloadPolicy::RetryDefer => {
                    if !revisit {
                        self.accounting.retry_deferred += 1;
                    }
                    AcceptOutcome::RetryDefer
                }
                OverloadPolicy::CloseWithBackoff => {
                    self.accounting.busy_refused += 1;
                    AcceptOutcome::Busy
                }
            };
        }
        self.accounting.accepted += 1;
        if revisit && has_token {
            self.accounting.retry_admitted += 1;
        }
        let mut cfg = self.template.clone();
        cfg.ticket_key = self.schedule.mint_key(now_secs);
        cfg.accept_ticket_keys = self.schedule.accept_keys(now_secs);
        let mut conn = Connection::server(cfg, conn_seed, original_dcid);
        // A deferred client re-knocks with the token its Retry handed
        // out; the connection must expect (and validate) it so the
        // address counts as validated from the first packet.
        if has_token {
            conn.use_retry = true;
        }
        self.conns.insert(
            key,
            ConnSlot {
                conn,
                costed: false,
            },
        );
        // Register the connection's whole CID pool for migration demux:
        // seq 0 (the handshake CID) plus every spare it will announce.
        // The pool is a pure function of (conn_seed, seq), so it is
        // indexable before a single NEW_CONNECTION_ID leaves.
        if self.template.cid_pool > 0 {
            for seq in 0..=self.template.cid_pool as u64 {
                let cid = derived_cid(conn_seed, CID_KIND_SERVER, seq);
                self.cid_index.insert(cid_u64(&cid), key);
            }
        }
        self.accounting.peak_active = self.accounting.peak_active.max(self.conns.len() as u64);
        AcceptOutcome::Accepted
    }

    /// The server process dies and restarts: every per-connection state
    /// machine is dropped on the floor (their clients get a
    /// stateless-reset-style signal from the caller, or time out), and
    /// with `forget_ticket_epochs` the restarted process also loses the
    /// previous ticket-key epochs, so outstanding tickets degrade to
    /// full handshakes. Returns the orphaned keys in sorted order —
    /// *never* iterate the connection table directly for side effects;
    /// `HashMap` order would leak nondeterminism into the event stream.
    pub fn crash_and_restart(&mut self, now: SimTime, forget_ticket_epochs: bool) -> Vec<u64> {
        let mut orphans: Vec<u64> = self.conns.keys().copied().collect();
        orphans.sort_unstable();
        self.conns.clear();
        self.cid_index.clear();
        self.accounting.crashes += 1;
        self.accounting.reset_conns += orphans.len() as u64;
        rq_obs::obs_log!(
            "quic/server",
            rq_obs::Level::Warn,
            "crash_and_restart dropped {} conns (forget_epochs={})",
            orphans.len(),
            forget_ticket_epochs
        );
        if forget_ticket_epochs {
            self.schedule = self.schedule.forget_old_epochs();
        }
        self.log.push(
            now,
            EventData::ServerCrashed {
                dropped_conns: orphans.len(),
            },
        );
        orphans
    }

    /// The connection behind `key`, if active.
    pub fn conn_mut(&mut self, key: u64) -> Option<&mut Connection> {
        self.conns.get_mut(&key).map(|s| &mut s.conn)
    }

    /// Accrues the handshake cost for `key` once its handshake completed;
    /// safe to call repeatedly (the cost lands exactly once).
    pub fn note_handshake_outcome(&mut self, key: u64) {
        let Some(slot) = self.conns.get_mut(&key) else {
            return;
        };
        if slot.costed || !slot.conn.is_established() {
            return;
        }
        slot.costed = true;
        let resumed = slot.conn.is_resumed();
        let zero_rtt = slot.conn.early_data_accepted() == Some(true);
        if zero_rtt {
            self.accounting.zero_rtt_accepted += 1;
            self.accounting.cpu_cost += self.cost_model.zero_rtt;
        } else if resumed {
            self.accounting.resumed_handshakes += 1;
            self.accounting.cpu_cost += self.cost_model.resumed;
        } else {
            self.accounting.full_handshakes += 1;
            self.accounting.cpu_cost += self.cost_model.full;
        }
    }

    /// Removes `key` from the table, tallying it as completed or failed,
    /// and returns the connection for final inspection.
    pub fn retire(&mut self, key: u64, completed: bool) -> Option<Connection> {
        let slot = self.conns.remove(&key)?;
        self.cid_index.retain(|_, v| *v != key);
        if completed {
            self.accounting.completed += 1;
        } else {
            self.accounting.failed += 1;
        }
        if slot
            .conn
            .log
            .first(|d| matches!(d, EventData::AmplificationBlocked { .. }))
            .is_some()
        {
            self.accounting.amp_blocked_conns += 1;
        }
        Some(slot.conn)
    }
}

/// First 8 bytes of a CID as a map key (all simulator CIDs are 8 bytes).
fn cid_u64(cid: &ConnectionId) -> u64 {
    let s = cid.as_slice();
    let mut b = [0u8; 8];
    let n = s.len().min(8);
    b[..n].copy_from_slice(&s[..n]);
    u64::from_be_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(limit: usize) -> ServerEngine {
        ServerEngine::new(
            EndpointConfig::rfc_default(),
            TicketKeySchedule::fixed(7),
            limit,
        )
    }

    fn dcid(n: u64) -> ConnectionId {
        ConnectionId::from_u64(n)
    }

    #[test]
    fn sheds_beyond_concurrency_limit() {
        let mut e = engine(2);
        assert_eq!(
            e.accept(1, 1, dcid(1), 0, false, false),
            AcceptOutcome::Accepted
        );
        assert_eq!(
            e.accept(2, 2, dcid(2), 0, false, false),
            AcceptOutcome::Accepted
        );
        assert_eq!(
            e.accept(3, 3, dcid(3), 0, false, false),
            AcceptOutcome::Shed
        );
        assert_eq!(e.active(), 2);
        assert_eq!(e.accounting.arrivals, 3);
        assert_eq!(e.accounting.accepted, 2);
        assert_eq!(e.accounting.shed, 1);
        // Retiring frees a slot; the next arrival is admitted again.
        assert!(e.retire(1, true).is_some());
        assert_eq!(
            e.accept(4, 4, dcid(4), 0, false, false),
            AcceptOutcome::Accepted
        );
        assert_eq!(e.accounting.completed, 1);
    }

    #[test]
    fn depth_and_peak_tracking() {
        let mut e = engine(8);
        for k in 0..4u64 {
            e.accept(k, k, dcid(k), 0, false, false);
        }
        // Depth samples: 0,1,2,3 at the four arrivals.
        assert_eq!(e.accounting.depth_sum, 6);
        assert_eq!(e.accounting.mean_depth(), 1.5);
        assert_eq!(e.accounting.peak_active, 4);
        e.retire(0, false);
        assert_eq!(e.accounting.failed, 1);
        // Peak is a high-water mark; retirement doesn't lower it.
        assert_eq!(e.accounting.peak_active, 4);
    }

    #[test]
    fn handshake_cost_lands_once_and_only_when_established() {
        let mut e = engine(4);
        e.accept(1, 1, dcid(1), 0, false, false);
        // Handshake not complete: no cost.
        e.note_handshake_outcome(1);
        assert_eq!(e.accounting.cpu_cost, 0.0);
        assert_eq!(e.accounting.full_handshakes, 0);
        // Unknown keys are ignored.
        e.note_handshake_outcome(99);
        assert_eq!(e.accounting.cpu_cost, 0.0);
    }

    #[test]
    fn accounting_merge_is_a_sum_with_peak_max() {
        let mut a = ServerAccounting {
            arrivals: 10,
            accepted: 8,
            shed: 2,
            completed: 7,
            failed: 1,
            full_handshakes: 5,
            resumed_handshakes: 2,
            zero_rtt_accepted: 1,
            cpu_cost: 5.95,
            peak_active: 4,
            depth_sum: 12,
            depth_samples: 10,
            amp_blocked_conns: 1,
            retry_deferred: 3,
            retry_admitted: 2,
            busy_refused: 1,
            crashes: 1,
            reset_conns: 2,
        };
        let b = ServerAccounting {
            arrivals: 5,
            accepted: 5,
            peak_active: 9,
            depth_sum: 3,
            depth_samples: 5,
            retry_deferred: 1,
            reset_conns: 4,
            ..ServerAccounting::default()
        };
        a.merge(&b);
        assert_eq!(a.arrivals, 15);
        assert_eq!(a.accepted, 13);
        assert_eq!(a.peak_active, 9);
        assert_eq!(a.depth_samples, 15);
        assert_eq!(a.mean_depth(), 1.0);
        assert_eq!(a.retry_deferred, 4);
        assert_eq!(a.retry_admitted, 2);
        assert_eq!(a.crashes, 1);
        assert_eq!(a.reset_conns, 6);
    }

    #[test]
    fn retry_defer_answers_retry_then_admits_revisits() {
        let mut e = engine(1).with_overload_policy(OverloadPolicy::RetryDefer);
        assert_eq!(
            e.accept(1, 1, dcid(1), 0, false, false),
            AcceptOutcome::Accepted
        );
        // At the limit: deferred, no state committed.
        assert_eq!(
            e.accept(2, 2, dcid(2), 0, false, false),
            AcceptOutcome::RetryDefer
        );
        assert_eq!(e.active(), 1);
        assert_eq!(e.accounting.retry_deferred, 1);
        assert_eq!(e.accounting.shed, 0);
        // Still full: the tokened revisit keeps knocking, uncounted.
        assert_eq!(
            e.accept(2, 2, dcid(2), 0, true, true),
            AcceptOutcome::RetryDefer
        );
        assert_eq!(e.accounting.arrivals, 2);
        assert_eq!(e.accounting.retry_deferred, 1);
        // A slot frees: the revisit is admitted with the token expected.
        e.retire(1, true);
        assert_eq!(
            e.accept(2, 2, dcid(2), 0, true, true),
            AcceptOutcome::Accepted
        );
        assert_eq!(e.accounting.retry_admitted, 1);
        assert!(e.conn_mut(2).unwrap().use_retry);
    }

    #[test]
    fn close_with_backoff_refuses_explicitly() {
        let mut e = engine(1).with_overload_policy(OverloadPolicy::CloseWithBackoff);
        assert_eq!(
            e.accept(1, 1, dcid(1), 0, false, false),
            AcceptOutcome::Accepted
        );
        assert_eq!(
            e.accept(2, 2, dcid(2), 0, false, false),
            AcceptOutcome::Busy
        );
        assert_eq!(e.accounting.busy_refused, 1);
        assert_eq!(e.accounting.shed, 0);
    }

    #[test]
    fn crash_drops_all_conns_in_sorted_key_order() {
        let mut e = engine(8);
        for k in [5u64, 1, 3] {
            e.accept(k, k, dcid(k), 0, false, false);
        }
        let orphans = e.crash_and_restart(SimTime::ZERO, false);
        assert_eq!(orphans, vec![1, 3, 5], "orphans must come out sorted");
        assert_eq!(e.active(), 0);
        assert_eq!(e.accounting.crashes, 1);
        assert_eq!(e.accounting.reset_conns, 3);
        assert!(e
            .log
            .first(|d| matches!(d, EventData::ServerCrashed { dropped_conns: 3 }))
            .is_some());
        // The table is usable again immediately.
        assert_eq!(
            e.accept(7, 7, dcid(7), 0, false, false),
            AcceptOutcome::Accepted
        );
    }

    #[test]
    fn crash_can_forget_previous_ticket_epochs() {
        let schedule = TicketKeySchedule::rotating(99, 100, 2);
        let mut e = ServerEngine::new(EndpointConfig::rfc_default(), schedule, 4);
        assert_eq!(e.schedule().accept_keys(250).len(), 3);
        e.crash_and_restart(SimTime::ZERO, true);
        // Only the current epoch survives the restart.
        assert_eq!(e.schedule().accept_keys(250).len(), 1);
        assert_eq!(e.schedule().mint_key(250), schedule.mint_key(250));
    }

    #[test]
    fn cid_index_routes_pool_cids_until_retire() {
        let mut template = EndpointConfig::rfc_default();
        template.cid_pool = 2;
        let mut e = ServerEngine::new(template, TicketKeySchedule::fixed(7), 4);
        e.accept(10, 42, dcid(1), 0, false, false);
        // Handshake CID and both spares route to the connection.
        for seq in 0..=2u64 {
            let cid = derived_cid(42, CID_KIND_SERVER, seq);
            assert_eq!(e.key_for_cid(&cid), Some(10), "seq {seq} not indexed");
        }
        assert_eq!(e.key_for_cid(&dcid(0xDEAD)), None);
        e.retire(10, true);
        let cid = derived_cid(42, CID_KIND_SERVER, 1);
        assert_eq!(e.key_for_cid(&cid), None, "index must not outlive conn");
    }

    #[test]
    fn cid_index_empty_without_pool() {
        let mut e = engine(4);
        e.accept(1, 42, dcid(1), 0, false, false);
        assert_eq!(e.key_for_cid(&derived_cid(42, CID_KIND_SERVER, 0)), None);
    }

    #[test]
    fn epoch_keys_follow_the_schedule() {
        let schedule = TicketKeySchedule::rotating(99, 100, 1);
        let e = ServerEngine::new(EndpointConfig::rfc_default(), schedule, 4);
        assert_eq!(e.schedule().mint_key(0), 99);
        assert_ne!(e.schedule().mint_key(250), 99);
        assert_eq!(e.schedule().accept_keys(250).len(), 2);
    }
}
