//! Application streams with connection- and stream-level flow control.
//!
//! Enough of RFC 9000 §2–4 to run the paper's workloads: client-initiated
//! bidirectional request/response streams (HTTP/1.1-over-QUIC and HTTP/3
//! request streams) and server-initiated unidirectional streams (the HTTP/3
//! control stream whose SETTINGS frame defines the paper's HTTP/3 TTFB).

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};

/// Stream-ID helpers (RFC 9000 §2.1): two LSBs encode initiator and
/// directionality.
pub mod id {
    /// True if the stream was initiated by the client.
    pub fn is_client_initiated(id: u64) -> bool {
        id & 0x1 == 0
    }
    /// True for bidirectional streams.
    pub fn is_bidi(id: u64) -> bool {
        id & 0x2 == 0
    }
    /// First client-initiated bidirectional stream.
    pub const CLIENT_BIDI_0: u64 = 0;
    /// First server-initiated unidirectional stream (HTTP/3 control).
    pub const SERVER_UNI_0: u64 = 3;
}

/// Send half of a stream.
#[derive(Debug, Default)]
pub struct SendStream {
    /// Queued-but-unsent bytes.
    pub pending: BytesMut,
    /// Next offset to assign.
    pub offset: u64,
    /// FIN queued after pending bytes drain.
    pub fin_queued: bool,
    /// FIN has been packetized.
    pub fin_sent: bool,
    /// Peer's flow-control limit for this stream.
    pub max_stream_data: u64,
}

impl SendStream {
    /// Queues data; `fin` marks the end of the stream.
    pub fn write(&mut self, data: &[u8], fin: bool) {
        self.pending.extend_from_slice(data);
        if fin {
            self.fin_queued = true;
        }
    }

    /// Bytes currently sendable under the stream flow-control limit.
    pub fn sendable(&self) -> usize {
        let limit = self.max_stream_data.saturating_sub(self.offset) as usize;
        self.pending.len().min(limit)
    }

    /// Takes up to `max` bytes for a STREAM frame. Returns
    /// `(offset, data, fin)`; `None` when nothing can be sent.
    pub fn take(&mut self, max: usize) -> Option<(u64, Bytes, bool)> {
        let n = self.sendable().min(max);
        if n == 0 && !(self.fin_queued && !self.fin_sent && self.pending.is_empty()) {
            return None;
        }
        let data = self.pending.split_to(n).freeze();
        let offset = self.offset;
        self.offset += n as u64;
        let fin = self.fin_queued && self.pending.is_empty();
        if fin {
            self.fin_sent = true;
        }
        Some((offset, data, fin))
    }

    /// Whether the stream still has anything to transmit.
    pub fn want_send(&self) -> bool {
        self.sendable() > 0 || (self.fin_queued && !self.fin_sent)
    }
}

/// Receive half of a stream with out-of-order reassembly.
#[derive(Debug, Default)]
pub struct RecvStream {
    segments: BTreeMap<u64, Bytes>,
    /// Contiguous-delivery cursor.
    pub offset: u64,
    /// Final size once FIN was received.
    pub fin_at: Option<u64>,
    /// Total contiguous bytes handed to the application.
    pub delivered: u64,
    /// Flow-control credit we last granted the peer for this stream
    /// (0 = still on the connection default).
    pub granted: u64,
    /// Time-ordering hook: set true on first delivered byte.
    pub got_first_byte: bool,
}

impl RecvStream {
    /// Accepts a STREAM frame; returns newly contiguous bytes.
    pub fn on_frame(&mut self, offset: u64, data: &[u8], fin: bool) -> Vec<u8> {
        if fin {
            self.fin_at = Some(offset + data.len() as u64);
        }
        let end = offset + data.len() as u64;
        if end > self.offset {
            let skip = self.offset.saturating_sub(offset) as usize;
            self.segments
                .entry(offset.max(self.offset))
                .or_insert_with(|| Bytes::copy_from_slice(&data[skip.min(data.len())..]));
        }
        let mut out = Vec::new();
        while let Some((&seg_off, _)) = self.segments.iter().next() {
            if seg_off > self.offset {
                break;
            }
            let seg = self.segments.remove(&seg_off).unwrap();
            let skip = (self.offset - seg_off) as usize;
            if skip < seg.len() {
                out.extend_from_slice(&seg[skip..]);
                self.offset = seg_off + seg.len() as u64;
            }
        }
        self.delivered = self.offset;
        if !out.is_empty() {
            self.got_first_byte = true;
        }
        out
    }

    /// True once all bytes up to FIN have been delivered.
    pub fn is_complete(&self) -> bool {
        matches!(self.fin_at, Some(end) if self.delivered >= end)
    }
}

/// All streams plus connection-level flow control.
#[derive(Debug)]
pub struct StreamSet {
    /// Send halves by stream ID.
    pub send: BTreeMap<u64, SendStream>,
    /// Receive halves by stream ID.
    pub recv: BTreeMap<u64, RecvStream>,
    /// Peer's connection-level limit on our sending.
    pub peer_max_data: u64,
    /// Our advertised limit on the peer's sending.
    pub local_max_data: u64,
    /// Total stream bytes we have sent (counted against peer_max_data).
    pub data_sent: u64,
    /// Total stream bytes received (counted against local_max_data).
    pub data_recvd: u64,
    /// Default per-stream credit granted to peer streams.
    pub default_stream_credit: u64,
    /// Connection-level receive window size (slides over data_recvd).
    pub conn_window: u64,
}

impl StreamSet {
    /// Creates a stream set with symmetric initial limits.
    pub fn new(initial_max_data: u64, initial_max_stream_data: u64) -> Self {
        StreamSet {
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            peer_max_data: initial_max_data,
            local_max_data: initial_max_data,
            data_sent: 0,
            data_recvd: 0,
            default_stream_credit: initial_max_stream_data,
            conn_window: initial_max_data,
        }
    }

    /// Opens (or returns) the send half of `id`.
    pub fn send_stream(&mut self, stream_id: u64) -> &mut SendStream {
        let credit = self.default_stream_credit;
        self.send.entry(stream_id).or_insert_with(|| SendStream {
            max_stream_data: credit,
            ..SendStream::default()
        })
    }

    /// Returns the receive half of `id`, creating it on first use.
    pub fn recv_stream(&mut self, stream_id: u64) -> &mut RecvStream {
        self.recv.entry(stream_id).or_default()
    }

    /// Connection-level send budget remaining.
    pub fn conn_send_budget(&self) -> u64 {
        self.peer_max_data.saturating_sub(self.data_sent)
    }

    /// Any stream wants to transmit and budget remains.
    pub fn want_send(&self) -> bool {
        self.conn_send_budget() > 0 && self.send.values().any(SendStream::want_send)
    }

    /// Whether we should grant the peer more connection credit: the
    /// window slides once the peer has consumed half of it (the update
    /// cadence real receivers exhibit, which drives the ack-eliciting
    /// client packets counted in Figure 11).
    pub fn should_send_max_data(&self) -> bool {
        self.data_recvd + self.conn_window / 2 > self.local_max_data
    }

    /// Computes the next MAX_DATA value: a sliding window of the initial
    /// size above the consumed amount.
    pub fn next_max_data(&mut self) -> u64 {
        self.local_max_data = self.data_recvd + self.conn_window;
        self.local_max_data
    }

    /// Per-stream flow-control grants that are due: streams whose peer has
    /// consumed more than half of the credit we last advertised. Returns
    /// `(stream_id, new_limit)` pairs and records the new grants.
    pub fn stream_credit_updates(&mut self) -> Vec<(u64, u64)> {
        let default = self.default_stream_credit;
        let mut out = Vec::new();
        for (&sid, rs) in self.recv.iter_mut() {
            if rs.fin_at.is_some() {
                continue; // finished streams need no more credit
            }
            let granted = if rs.granted == 0 { default } else { rs.granted };
            if rs.delivered + default / 2 > granted {
                let new_grant = rs.delivered + default;
                rs.granted = new_grant;
                out.push((sid, new_grant));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_properties() {
        assert!(id::is_client_initiated(0));
        assert!(id::is_bidi(0));
        assert!(!id::is_client_initiated(3));
        assert!(!id::is_bidi(3));
        assert!(id::is_client_initiated(4));
    }

    #[test]
    fn send_stream_respects_limit() {
        let mut s = SendStream {
            max_stream_data: 10,
            ..SendStream::default()
        };
        s.write(&[9u8; 20], true);
        let (off, data, fin) = s.take(100).unwrap();
        assert_eq!((off, data.len(), fin), (0, 10, false));
        assert_eq!(s.sendable(), 0);
        assert!(s.want_send(), "fin still pending behind flow control");
        // Raise the limit; the rest plus FIN flows.
        s.max_stream_data = 20;
        let (off, data, fin) = s.take(100).unwrap();
        assert_eq!((off, data.len(), fin), (10, 10, true));
        assert!(!s.want_send());
    }

    #[test]
    fn send_stream_fin_only_frame() {
        let mut s = SendStream {
            max_stream_data: 100,
            ..SendStream::default()
        };
        s.write(b"x", false);
        let _ = s.take(10).unwrap();
        s.write(&[], true);
        let (off, data, fin) = s.take(10).unwrap();
        assert_eq!((off, data.len(), fin), (1, 0, true));
    }

    #[test]
    fn recv_stream_reassembles() {
        let mut r = RecvStream::default();
        assert!(r.on_frame(5, b"world", true).is_empty());
        let out = r.on_frame(0, b"hello", false);
        assert_eq!(out, b"helloworld");
        assert!(r.is_complete());
    }

    #[test]
    fn recv_stream_duplicates_ignored() {
        let mut r = RecvStream::default();
        assert_eq!(r.on_frame(0, b"abc", false), b"abc");
        assert!(r.on_frame(0, b"abc", false).is_empty());
        assert_eq!(r.delivered, 3);
    }

    #[test]
    fn connection_flow_control_window() {
        let mut set = StreamSet::new(100, 50);
        assert_eq!(set.conn_send_budget(), 100);
        set.data_sent = 80;
        assert_eq!(set.conn_send_budget(), 20);
        // Window slides once half of it is consumed.
        set.data_recvd = 49;
        assert!(!set.should_send_max_data());
        set.data_recvd = 60;
        assert!(set.should_send_max_data());
        assert_eq!(set.next_max_data(), 160);
        assert!(!set.should_send_max_data());
    }

    #[test]
    fn want_send_combines_streams_and_budget() {
        let mut set = StreamSet::new(100, 100);
        assert!(!set.want_send());
        set.send_stream(0).write(b"req", true);
        assert!(set.want_send());
        set.data_sent = 100;
        assert!(!set.want_send(), "exhausted connection budget blocks send");
    }
}
