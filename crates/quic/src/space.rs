//! Per-packet-number-space state: packet number allocation, receive-side
//! ACK bookkeeping, crypto-stream assembly, and retransmittable content.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};
use rq_sim::SimTime;
use rq_wire::Frame;

/// Content of a sent packet that must be retransmitted if it is lost.
///
/// Stored per packet (keyed by `retx_token` in the recovery tracker) so the
/// connection can rebuild equivalent frames on loss or PTO.
#[derive(Debug, Clone, Default)]
pub struct RetxContent {
    /// CRYPTO ranges: (offset, bytes).
    pub crypto: Vec<(u64, Bytes)>,
    /// STREAM ranges: (id, offset, bytes, fin).
    pub stream: Vec<(u64, u64, Bytes, bool)>,
    /// HANDSHAKE_DONE was carried.
    pub handshake_done: bool,
    /// NEW_CONNECTION_ID frames carried: (seq, retire_prior_to, cid).
    pub new_cids: Vec<(u64, u64, Vec<u8>)>,
    /// MAX_DATA carried (value).
    pub max_data: Option<u64>,
    /// MAX_STREAM_DATA carried: (id, value).
    pub max_stream_data: Vec<(u64, u64)>,
}

impl RetxContent {
    /// True if nothing in this packet needs retransmission.
    pub fn is_empty(&self) -> bool {
        self.crypto.is_empty()
            && self.stream.is_empty()
            && !self.handshake_done
            && self.new_cids.is_empty()
            && self.max_data.is_none()
            && self.max_stream_data.is_empty()
    }
}

/// Receive-side tracking: which packet numbers we have received and must
/// acknowledge.
#[derive(Debug, Default)]
pub struct RecvState {
    /// All received packet numbers (kept sorted descending for ACK frames).
    received: Vec<u64>,
    /// Arrival time of the largest received packet (ack-delay basis).
    pub largest_recv_time: Option<SimTime>,
    /// Ack-eliciting packets received since the last ACK we sent.
    pub unacked_eliciting: usize,
    /// An ACK is owed (ack-eliciting data arrived).
    pub ack_pending: bool,
    /// Deadline by which a pending ACK must be sent (max_ack_delay).
    pub ack_deadline: Option<SimTime>,
    /// The deadline fired but the ACK could not be sent yet (e.g. the
    /// server is amplification-blocked): send at the next opportunity
    /// without re-arming a timer.
    pub ack_overdue: bool,
}

impl RecvState {
    /// Records a received packet. Returns `false` if it was a duplicate.
    ///
    /// The list is kept sorted descending; insertion uses binary search so
    /// bulk transfers (thousands of packets) stay O(log n) per lookup
    /// instead of re-sorting.
    pub fn on_packet(&mut self, pn: u64, ack_eliciting: bool, now: SimTime) -> bool {
        match self.received.binary_search_by(|probe| pn.cmp(probe)) {
            Ok(_) => return false, // duplicate
            Err(idx) => self.received.insert(idx, pn),
        }
        if Some(pn) == self.received.first().copied() {
            self.largest_recv_time = Some(now);
        }
        if ack_eliciting {
            self.unacked_eliciting += 1;
            self.ack_pending = true;
        }
        true
    }

    /// Largest received packet number.
    pub fn largest(&self) -> Option<u64> {
        self.received.first().copied()
    }

    /// Packet numbers to encode in an ACK frame (descending), or `None`
    /// if nothing was received yet. Capped to the newest 128 entries —
    /// older packets were acknowledged by earlier ACK frames and their
    /// ranges pruned, exactly as real stacks bound their ACK state.
    pub fn ack_list(&self) -> Option<&[u64]> {
        if self.received.is_empty() {
            None
        } else {
            Some(&self.received[..self.received.len().min(128)])
        }
    }

    /// Marks an ACK as sent.
    pub fn on_ack_sent(&mut self) {
        self.ack_pending = false;
        self.unacked_eliciting = 0;
        self.ack_deadline = None;
        self.ack_overdue = false;
    }

    /// Count of distinct packets received.
    pub fn count(&self) -> usize {
        self.received.len()
    }

    /// True if the received packet numbers form `0..=largest` with no gap
    /// (a gap means at least one peer packet was lost or dropped).
    pub fn is_contiguous_from_zero(&self) -> bool {
        match self.largest() {
            None => true,
            Some(largest) => self.received.len() as u64 == largest + 1,
        }
    }
}

/// Crypto-stream reassembly and transmission for one space.
#[derive(Debug, Default)]
pub struct CryptoStream {
    /// Outgoing bytes not yet packetized.
    pub tx_pending: BytesMut,
    /// Next crypto offset to assign on send.
    pub tx_offset: u64,
    /// In-order delivery cursor on the receive side.
    pub rx_offset: u64,
    /// Out-of-order segments: offset → bytes.
    rx_segments: BTreeMap<u64, Bytes>,
    /// Highest contiguous crypto byte handed to TLS (mirror of rx_offset).
    pub rx_delivered: u64,
}

impl CryptoStream {
    /// Queues outgoing handshake bytes.
    pub fn queue_tx(&mut self, data: &[u8]) {
        self.tx_pending.extend_from_slice(data);
    }

    /// Takes up to `max` pending bytes for a CRYPTO frame, advancing the
    /// send offset. Returns `(offset, data)`.
    pub fn take_tx(&mut self, max: usize) -> Option<(u64, Bytes)> {
        if self.tx_pending.is_empty() || max == 0 {
            return None;
        }
        let n = self.tx_pending.len().min(max);
        let data = self.tx_pending.split_to(n).freeze();
        let offset = self.tx_offset;
        self.tx_offset += n as u64;
        Some((offset, data))
    }

    /// Accepts a received CRYPTO frame; returns newly contiguous bytes (may
    /// be empty for duplicates/out-of-order data). `true` in the second
    /// tuple slot if any byte of the frame was a retransmission overlap.
    pub fn on_rx(&mut self, offset: u64, data: &[u8]) -> (Vec<u8>, bool) {
        let end = offset + data.len() as u64;
        let duplicate_overlap = offset < self.rx_offset && !data.is_empty();
        if end > self.rx_offset {
            // Trim the already-delivered prefix.
            let skip = self.rx_offset.saturating_sub(offset) as usize;
            let useful_offset = offset.max(self.rx_offset);
            self.rx_segments
                .entry(useful_offset)
                .or_insert_with(|| Bytes::copy_from_slice(&data[skip.min(data.len())..]));
        }
        // Drain contiguous segments.
        let mut out = Vec::new();
        while let Some((&seg_off, _seg)) = self.rx_segments.iter().next() {
            if seg_off > self.rx_offset {
                break;
            }
            let seg = self.rx_segments.remove(&seg_off).unwrap();
            let skip = (self.rx_offset - seg_off) as usize;
            if skip < seg.len() {
                out.extend_from_slice(&seg[skip..]);
                self.rx_offset = seg_off + seg.len() as u64;
            }
        }
        self.rx_delivered = self.rx_offset;
        (out, duplicate_overlap)
    }

    /// Bytes waiting to be sent.
    pub fn tx_len(&self) -> usize {
        self.tx_pending.len()
    }
}

/// All mutable state for one packet number space.
///
/// The Application instance doubles as the 0-RTT space: 0-RTT and 1-RTT
/// packets share its packet number sequence (RFC 9000 §12.3), with
/// [`SpaceState::zero_rtt_pns`] remembering which numbers went out as
/// 0-RTT so a server reject can surgically unwind exactly those sends.
#[derive(Debug, Default)]
pub struct SpaceState {
    /// Next packet number to assign.
    pub next_pn: u64,
    /// Receive bookkeeping.
    pub recv: RecvState,
    /// Crypto stream (unused in the Application space once complete).
    pub crypto: CryptoStream,
    /// Retransmittable content of sent packets, by retx token.
    pub retx: BTreeMap<u64, RetxContent>,
    /// Content queued for (re)transmission after loss.
    pub retx_queue: Vec<RetxContent>,
    /// Number of PING probes queued for immediate send.
    pub pending_pings: usize,
    /// Space has been discarded (keys dropped).
    pub discarded: bool,
    /// Packet numbers sent as 0-RTT packets (Application space only).
    pub zero_rtt_pns: Vec<u64>,
}

impl SpaceState {
    /// Allocates the next packet number.
    pub fn alloc_pn(&mut self) -> u64 {
        let pn = self.next_pn;
        self.next_pn += 1;
        pn
    }

    /// Records a packet number as sent in a 0-RTT packet.
    pub fn mark_zero_rtt(&mut self, pn: u64) {
        self.zero_rtt_pns.push(pn);
    }

    /// Whether `pn` was sent as 0-RTT.
    pub fn is_zero_rtt(&self, pn: u64) -> bool {
        self.zero_rtt_pns.contains(&pn)
    }

    /// Queues content for retransmission.
    pub fn queue_retx(&mut self, content: RetxContent) {
        if !content.is_empty() {
            self.retx_queue.push(content);
        }
    }

    /// Whether this space has anything useful to send (ACK not counted).
    pub fn has_data_to_send(&self) -> bool {
        self.crypto.tx_len() > 0 || !self.retx_queue.is_empty() || self.pending_pings > 0
    }
}

/// Extracts the retransmittable content from an encoded frame list (used
/// when registering sent packets).
pub fn retx_content_of(frames: &[Frame]) -> RetxContent {
    let mut c = RetxContent::default();
    for f in frames {
        match f {
            Frame::Crypto { offset, data } => c.crypto.push((*offset, data.clone())),
            Frame::Stream {
                id,
                offset,
                data,
                fin,
            } => c.stream.push((*id, *offset, data.clone(), *fin)),
            Frame::HandshakeDone => c.handshake_done = true,
            Frame::NewConnectionId {
                seq,
                retire_prior_to,
                cid,
            } => c.new_cids.push((*seq, *retire_prior_to, cid.clone())),
            Frame::MaxData { max } => c.max_data = Some(*max),
            Frame::MaxStreamData { id, max } => c.max_stream_data.push((*id, *max)),
            _ => {}
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pn_allocation_monotonic() {
        let mut s = SpaceState::default();
        assert_eq!(s.alloc_pn(), 0);
        assert_eq!(s.alloc_pn(), 1);
        assert_eq!(s.alloc_pn(), 2);
    }

    #[test]
    fn zero_rtt_and_one_rtt_share_the_pn_sequence() {
        let mut s = SpaceState::default();
        let early = s.alloc_pn();
        s.mark_zero_rtt(early);
        let one_rtt = s.alloc_pn();
        assert_eq!((early, one_rtt), (0, 1));
        assert!(s.is_zero_rtt(early));
        assert!(!s.is_zero_rtt(one_rtt));
    }

    #[test]
    fn recv_tracks_and_dedups() {
        let mut r = RecvState::default();
        let t = SimTime::ZERO;
        assert!(r.on_packet(0, true, t));
        assert!(r.on_packet(2, true, t));
        assert!(!r.on_packet(0, true, t), "duplicate rejected");
        assert_eq!(r.largest(), Some(2));
        assert_eq!(r.ack_list().unwrap(), &[2, 0]);
        assert_eq!(r.unacked_eliciting, 2);
        r.on_ack_sent();
        assert!(!r.ack_pending);
        assert_eq!(r.unacked_eliciting, 0);
    }

    #[test]
    fn non_eliciting_packets_do_not_demand_ack() {
        let mut r = RecvState::default();
        r.on_packet(0, false, SimTime::ZERO);
        assert!(!r.ack_pending);
        assert_eq!(r.largest(), Some(0));
    }

    #[test]
    fn crypto_tx_chunks_respect_max() {
        let mut c = CryptoStream::default();
        c.queue_tx(&[1u8; 100]);
        let (off, data) = c.take_tx(60).unwrap();
        assert_eq!((off, data.len()), (0, 60));
        let (off, data) = c.take_tx(60).unwrap();
        assert_eq!((off, data.len()), (60, 40));
        assert!(c.take_tx(60).is_none());
    }

    #[test]
    fn crypto_rx_in_order() {
        let mut c = CryptoStream::default();
        let (out, dup) = c.on_rx(0, b"hello");
        assert_eq!(out, b"hello");
        assert!(!dup);
        let (out, _) = c.on_rx(5, b" world");
        assert_eq!(out, b" world");
    }

    #[test]
    fn crypto_rx_out_of_order_buffers() {
        let mut c = CryptoStream::default();
        let (out, _) = c.on_rx(5, b"world");
        assert!(out.is_empty());
        let (out, _) = c.on_rx(0, b"hello");
        assert_eq!(out, b"helloworld");
        assert_eq!(c.rx_offset, 10);
    }

    #[test]
    fn crypto_rx_duplicate_flagged() {
        let mut c = CryptoStream::default();
        let _ = c.on_rx(0, b"hello");
        let (out, dup) = c.on_rx(0, b"hello");
        assert!(out.is_empty());
        assert!(dup, "full duplicate must be flagged");
        // Partial overlap delivers only the new tail.
        let (out, dup) = c.on_rx(3, b"lo more");
        assert_eq!(out, b" more");
        assert!(dup);
    }

    #[test]
    fn retx_content_extraction() {
        let frames = vec![
            Frame::Ping,
            Frame::Crypto {
                offset: 10,
                data: Bytes::from_static(b"abc"),
            },
            Frame::Stream {
                id: 0,
                offset: 0,
                data: Bytes::from_static(b"req"),
                fin: true,
            },
            Frame::HandshakeDone,
            Frame::MaxData { max: 4096 },
        ];
        let c = retx_content_of(&frames);
        assert_eq!(c.crypto.len(), 1);
        assert_eq!(c.stream.len(), 1);
        assert!(c.handshake_done);
        assert_eq!(c.max_data, Some(4096));
        assert!(!c.is_empty());
        assert!(retx_content_of(&[Frame::Ping]).is_empty());
    }
}
