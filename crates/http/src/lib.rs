//! Minimal HTTP/1.1 and HTTP/3 layers over QUIC streams.
//!
//! The paper measures both HTTP/1.1-over-QUIC and HTTP/3 (Figure 5 caption:
//! HTTP/3's TTFB is one RTT lower because the first STREAM frame a client
//! receives is the server's control-stream SETTINGS, sent right after the
//! handshake completes, whereas HTTP/1.1's first stream byte is the
//! response itself). This crate implements exactly enough of both:
//!
//! * HTTP/1.1: textual request/response with `Content-Length` framing on
//!   the client's first bidirectional stream.
//! * HTTP/3 (RFC 9114 subset): unidirectional control streams carrying
//!   SETTINGS, and HEADERS/DATA frames on request streams. Header blocks
//!   are literal text rather than QPACK — the paper's metrics depend on
//!   frame timing and sizes, not on header compression (see DESIGN.md).

pub mod h1;
pub mod h3;

pub use h1::{H1Request, H1Response};
pub use h3::{H3Frame, StreamType, SETTINGS_PAYLOAD};

/// Which HTTP flavour a testbed run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpVersion {
    /// HTTP/1.1 over a QUIC bidirectional stream.
    H1,
    /// HTTP/3.
    H3,
}

impl HttpVersion {
    /// Display label ("http/1.1" / "http/3").
    pub fn label(&self) -> &'static str {
        match self {
            HttpVersion::H1 => "http/1.1",
            HttpVersion::H3 => "http/3",
        }
    }
}
