//! HTTP/3 subset (RFC 9114): control streams, SETTINGS, HEADERS, DATA.
//!
//! Header blocks are literal `name: value` text instead of QPACK; the
//! paper's HTTP/3 observable is the *timing* of the first SETTINGS STREAM
//! frame and the response DATA frames, which this preserves.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rq_wire::VarInt;

/// Unidirectional stream types (RFC 9114 §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamType {
    /// Control stream (0x00).
    Control,
    /// QPACK encoder (0x02) — opened but unused here.
    QpackEncoder,
    /// QPACK decoder (0x03) — opened but unused here.
    QpackDecoder,
}

impl StreamType {
    /// Wire code.
    pub fn code(self) -> u64 {
        match self {
            StreamType::Control => 0x00,
            StreamType::QpackEncoder => 0x02,
            StreamType::QpackDecoder => 0x03,
        }
    }

    /// Parses a wire code.
    pub fn from_code(v: u64) -> Option<Self> {
        Some(match v {
            0x00 => StreamType::Control,
            0x02 => StreamType::QpackEncoder,
            0x03 => StreamType::QpackDecoder,
            _ => return None,
        })
    }
}

/// The fixed SETTINGS payload our server advertises (three standard
/// identifiers, mirroring quic-go's defaults).
pub const SETTINGS_PAYLOAD: &[u8] = &[
    0x01, 0x40, 0x64, // QPACK_MAX_TABLE_CAPACITY = 100
    0x07, 0x40, 0x64, // QPACK_BLOCKED_STREAMS = 100
    0x33, 0x01, // H3_DATAGRAM-ish filler = 1
];

/// HTTP/3 frames (RFC 9114 §7.2 subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H3Frame {
    /// DATA (0x00).
    Data {
        /// Payload bytes.
        payload: Bytes,
    },
    /// HEADERS (0x01), literal text block.
    Headers {
        /// `name: value` lines joined by `\n`.
        block: String,
    },
    /// SETTINGS (0x04), opaque payload.
    Settings {
        /// Raw settings bytes.
        payload: Bytes,
    },
}

impl H3Frame {
    fn type_id(&self) -> u64 {
        match self {
            H3Frame::Data { .. } => 0x00,
            H3Frame::Headers { .. } => 0x01,
            H3Frame::Settings { .. } => 0x04,
        }
    }

    /// Serializes type + length + payload.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        VarInt::new(self.type_id()).unwrap().encode(buf);
        match self {
            H3Frame::Data { payload } => {
                VarInt::new(payload.len() as u64).unwrap().encode(buf);
                buf.put_slice(payload);
            }
            H3Frame::Headers { block } => {
                VarInt::new(block.len() as u64).unwrap().encode(buf);
                buf.put_slice(block.as_bytes());
            }
            H3Frame::Settings { payload } => {
                VarInt::new(payload.len() as u64).unwrap().encode(buf);
                buf.put_slice(payload);
            }
        }
    }

    /// Serialized length.
    pub fn encoded_len(&self) -> usize {
        let payload_len = match self {
            H3Frame::Data { payload } => payload.len(),
            H3Frame::Headers { block } => block.len(),
            H3Frame::Settings { payload } => payload.len(),
        };
        VarInt::new(self.type_id()).unwrap().encoded_len()
            + VarInt::new(payload_len as u64).unwrap().encoded_len()
            + payload_len
    }

    /// Decodes one frame if complete; consumes nothing otherwise.
    pub fn decode(buf: &mut Bytes) -> Option<H3Frame> {
        let mut peek = buf.clone();
        let ty = VarInt::decode(&mut peek).ok()?.value();
        let len = VarInt::decode(&mut peek).ok()?.value() as usize;
        if peek.remaining() < len {
            return None;
        }
        let payload = peek.copy_to_bytes(len);
        *buf = peek;
        Some(match ty {
            0x00 => H3Frame::Data { payload },
            0x01 => H3Frame::Headers {
                block: String::from_utf8_lossy(&payload).into_owned(),
            },
            0x04 => H3Frame::Settings { payload },
            // Unknown frame types are skipped per RFC 9114 §9.
            _ => return H3Frame::decode(buf),
        })
    }
}

/// Builds the bytes a server writes at the head of its control stream:
/// the stream type then SETTINGS.
pub fn control_stream_prelude() -> Vec<u8> {
    let mut out = BytesMut::new();
    VarInt::new(StreamType::Control.code())
        .unwrap()
        .encode(&mut out);
    H3Frame::Settings {
        payload: Bytes::from_static(SETTINGS_PAYLOAD),
    }
    .encode(&mut out);
    out.to_vec()
}

/// Builds an HTTP/3 GET request (HEADERS frame) for `path`.
pub fn request_bytes(path: &str, host: &str) -> Vec<u8> {
    let block = format!(
        ":method: GET\n:scheme: https\n:authority: {host}\n:path: {path}\nuser-agent: reacked-quicer/0.1"
    );
    let mut out = BytesMut::new();
    H3Frame::Headers { block }.encode(&mut out);
    out.to_vec()
}

/// Builds an HTTP/3 response: HEADERS then one DATA frame of `body_len`
/// deterministic bytes.
pub fn response_bytes(body_len: usize) -> Vec<u8> {
    let block = format!(":status: 200\ncontent-length: {body_len}");
    let mut out = BytesMut::new();
    H3Frame::Headers { block }.encode(&mut out);
    H3Frame::Data {
        payload: Bytes::from(crate::h1::body_bytes(body_len)),
    }
    .encode(&mut out);
    out.to_vec()
}

/// Extracts the `:path` pseudo-header from a request stream's bytes.
pub fn parse_request_path(data: &[u8]) -> Option<String> {
    let mut buf = Bytes::copy_from_slice(data);
    while let Some(frame) = H3Frame::decode(&mut buf) {
        if let H3Frame::Headers { block } = frame {
            for line in block.lines() {
                if let Some(p) = line.strip_prefix(":path: ") {
                    return Some(p.to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        for frame in [
            H3Frame::Data {
                payload: Bytes::from_static(b"hello"),
            },
            H3Frame::Headers {
                block: ":status: 200".into(),
            },
            H3Frame::Settings {
                payload: Bytes::from_static(SETTINGS_PAYLOAD),
            },
        ] {
            let mut buf = BytesMut::new();
            frame.encode(&mut buf);
            assert_eq!(buf.len(), frame.encoded_len());
            let mut bytes = buf.freeze();
            assert_eq!(H3Frame::decode(&mut bytes), Some(frame));
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn partial_frame_not_consumed() {
        let frame = H3Frame::Data {
            payload: Bytes::from(vec![1u8; 100]),
        };
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        let mut partial = Bytes::copy_from_slice(&buf[..50]);
        assert_eq!(H3Frame::decode(&mut partial), None);
        assert_eq!(partial.len(), 50);
    }

    #[test]
    fn control_prelude_starts_with_stream_type() {
        let p = control_stream_prelude();
        assert_eq!(p[0], 0x00);
        let mut rest = Bytes::copy_from_slice(&p[1..]);
        match H3Frame::decode(&mut rest).unwrap() {
            H3Frame::Settings { payload } => assert_eq!(&payload[..], SETTINGS_PAYLOAD),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn request_path_extraction() {
        let req = request_bytes("/10240", "example.org");
        assert_eq!(parse_request_path(&req).unwrap(), "/10240");
    }

    #[test]
    fn response_carries_body() {
        let resp = response_bytes(64);
        let mut buf = Bytes::copy_from_slice(&resp);
        let headers = H3Frame::decode(&mut buf).unwrap();
        assert!(matches!(headers, H3Frame::Headers { .. }));
        match H3Frame::decode(&mut buf).unwrap() {
            H3Frame::Data { payload } => assert_eq!(payload.len(), 64),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_frame_types_skipped() {
        let mut buf = BytesMut::new();
        // GOAWAY (0x07) with 1-byte payload, then DATA.
        VarInt::new(0x07).unwrap().encode(&mut buf);
        VarInt::new(1).unwrap().encode(&mut buf);
        buf.put_u8(0);
        H3Frame::Data {
            payload: Bytes::from_static(b"x"),
        }
        .encode(&mut buf);
        let mut bytes = buf.freeze();
        match H3Frame::decode(&mut bytes).unwrap() {
            H3Frame::Data { payload } => assert_eq!(&payload[..], b"x"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_type_codes() {
        assert_eq!(StreamType::from_code(0x00), Some(StreamType::Control));
        assert_eq!(StreamType::from_code(0x99), None);
    }
}
