//! HTTP/1.1 over QUIC streams.

/// A parsed (or to-be-serialized) HTTP/1.1 GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H1Request {
    /// Request path, e.g. `/10240`.
    pub path: String,
    /// Host header value.
    pub host: String,
}

impl H1Request {
    /// Builds a GET request.
    pub fn get(path: &str, host: &str) -> Self {
        H1Request {
            path: path.into(),
            host: host.into(),
        }
    }

    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nUser-Agent: reacked-quicer/0.1\r\n\r\n",
            self.path, self.host
        )
        .into_bytes()
    }

    /// Parses a request from bytes; `None` until the blank line arrives.
    pub fn decode(data: &[u8]) -> Option<H1Request> {
        let text = std::str::from_utf8(data).ok()?;
        if !text.contains("\r\n\r\n") {
            return None;
        }
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split(' ');
        let method = parts.next()?;
        if method != "GET" {
            return None;
        }
        let path = parts.next()?.to_string();
        let mut host = String::new();
        for line in lines {
            if let Some(h) = line.strip_prefix("Host: ") {
                host = h.to_string();
            }
        }
        Some(H1Request { path, host })
    }
}

/// An HTTP/1.1 response with an opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct H1Response {
    /// Status code.
    pub status: u16,
    /// Body length.
    pub body_len: usize,
}

impl H1Response {
    /// Builds a 200 response carrying `body_len` bytes.
    pub fn ok(body_len: usize) -> Self {
        H1Response {
            status: 200,
            body_len,
        }
    }

    /// Serialized header block (before the body).
    pub fn header_bytes(&self) -> Vec<u8> {
        format!(
            "HTTP/1.1 {} OK\r\nServer: reacked-quicer/0.1\r\nContent-Length: {}\r\n\r\n",
            self.status, self.body_len
        )
        .into_bytes()
    }

    /// Full response: headers followed by a deterministic body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.header_bytes();
        out.extend(body_bytes(self.body_len));
        out
    }

    /// Parses the status line and Content-Length from a response prefix.
    /// Returns `(response, header_len)` once the header block is complete.
    pub fn decode_header(data: &[u8]) -> Option<(H1Response, usize)> {
        // Locate the header/body boundary on raw bytes first — the body is
        // binary and need not be valid UTF-8.
        let window = &data[..data.len().min(1024)];
        let header_end = window.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
        let text = std::str::from_utf8(&window[..header_end]).ok()?;
        let mut status = 0u16;
        let mut body_len = 0usize;
        for (i, line) in text[..header_end].split("\r\n").enumerate() {
            if i == 0 {
                status = line.split(' ').nth(1)?.parse().ok()?;
            } else if let Some(v) = line.strip_prefix("Content-Length: ") {
                body_len = v.parse().ok()?;
            }
        }
        Some((H1Response { status, body_len }, header_end))
    }
}

/// Deterministic pseudo-random body content of `len` bytes (stands in for
/// the paper's "randomly generated files").
pub fn body_bytes(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x: u32 = 0x9E37_79B9;
    for _ in 0..len {
        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
        out.push((x >> 24) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = H1Request::get("/10240", "example.org");
        let bytes = req.encode();
        let parsed = H1Request::decode(&bytes).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_incomplete_returns_none() {
        let req = H1Request::get("/x", "h");
        let bytes = req.encode();
        assert_eq!(H1Request::decode(&bytes[..bytes.len() - 2]), None);
    }

    #[test]
    fn response_roundtrip() {
        let resp = H1Response::ok(10_240);
        let bytes = resp.encode();
        let (parsed, header_len) = H1Response::decode_header(&bytes).unwrap();
        assert_eq!(parsed, resp);
        assert_eq!(bytes.len() - header_len, 10_240);
    }

    #[test]
    fn body_deterministic() {
        assert_eq!(body_bytes(100), body_bytes(100));
        assert_ne!(body_bytes(100)[..50], body_bytes(100)[50..]);
    }

    #[test]
    fn non_get_rejected() {
        assert_eq!(H1Request::decode(b"POST / HTTP/1.1\r\n\r\n"), None);
    }
}
