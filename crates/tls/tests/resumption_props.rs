//! Property-based tests for the session-resumption subsystem.
//!
//! The resumed-scenario determinism guarantee rests on two facts checked
//! here for arbitrary inputs: ticket minting is a pure function of
//! `(ticket_key, resumption secret)` with a lossless open/mint roundtrip
//! under the right key, and a ticket never opens under the wrong key or
//! after corruption (so cross-server replay falls back to a full
//! handshake instead of desynchronizing keys).

use proptest::prelude::*;
use rq_tls::{early_keys, mint_ticket, open_ticket, resumption_secret};

fn secret_from(seed: u64) -> [u8; 32] {
    // Spread the seed over 32 bytes; the exact map is irrelevant, it only
    // needs to be deterministic and injective enough for the properties.
    let mut s = [0u8; 32];
    for (i, b) in s.iter_mut().enumerate() {
        *b = (seed.rotate_left((i % 64) as u32) ^ (i as u64).wrapping_mul(0x9E37)) as u8;
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Same seed ⇒ same ticket bytes, and the issuing key recovers the
    /// exact secret (the resumed connection derives identical keys).
    #[test]
    fn mint_is_deterministic_and_open_roundtrips(key in any::<u64>(), seed in any::<u64>()) {
        let secret = secret_from(seed);
        let a = mint_ticket(key, &secret);
        let b = mint_ticket(key, &secret);
        prop_assert_eq!(a, b, "same inputs must mint identical ticket bytes");
        prop_assert_eq!(open_ticket(key, &a), Some(secret));
    }

    /// A different ticket key neither mints the same bytes nor opens the
    /// other key's tickets.
    #[test]
    fn wrong_key_is_rejected(key in any::<u64>(), other in any::<u64>(), seed in any::<u64>()) {
        if key == other {
            return Ok(()); // vacuous case (no prop_assume in the vendored crate)
        }
        let secret = secret_from(seed);
        let ticket = mint_ticket(key, &secret);
        prop_assert_ne!(mint_ticket(other, &secret), ticket);
        prop_assert_eq!(open_ticket(other, &ticket), None);
    }

    /// Any single-byte corruption invalidates the ticket.
    #[test]
    fn corruption_is_rejected(key in any::<u64>(), seed in any::<u64>(), pos in 0usize..48, flip in 1u8..=255) {
        let secret = secret_from(seed);
        let mut ticket = mint_ticket(key, &secret);
        ticket[pos] ^= flip;
        prop_assert_eq!(open_ticket(key, &ticket), None);
    }

    /// Distinct transcripts yield distinct resumption secrets and early
    /// keys (no cross-connection key reuse).
    #[test]
    fn secrets_and_early_keys_separate_by_transcript(a in any::<u64>(), b in any::<u64>()) {
        if a == b {
            return Ok(()); // vacuous case
        }
        let (ta, tb) = (secret_from(a), secret_from(b));
        let (ra, rb) = (resumption_secret(&ta), resumption_secret(&tb));
        prop_assert_ne!(ra, rb);
        prop_assert_ne!(early_keys(&ra), early_keys(&rb));
    }
}
