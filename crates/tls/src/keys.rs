//! Toy QUIC-TLS key schedule and packet protection.
//!
//! Mirrors the *structure* of RFC 9001: per-space secrets derived from a
//! running transcript, separate client/server keys, and Initial secrets
//! derived from the client's destination connection ID so both sides can
//! protect Initial packets before any TLS exchange. Strength is not a goal
//! (see DESIGN.md substitutions); timing and availability are.

use crate::sha256::{hkdf_expand_label, hkdf_extract, hmac_sha256, DIGEST_LEN};

/// Fixed salt for Initial secrets (stands in for RFC 9001's version salt).
const INITIAL_SALT: &[u8] = b"reacked-quicer-v1-initial-salt";

/// Encryption level / packet number space from TLS's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Initial keys (derived from the client DCID).
    Initial,
    /// Handshake keys (after ServerHello).
    Handshake,
    /// Application (1-RTT) keys (after server Finished is sent/received).
    Application,
}

/// The two key directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySide {
    /// Keys used to protect client-to-server packets.
    Client,
    /// Keys used to protect server-to-client packets.
    Server,
}

/// Key material for one level: one key per direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelKeys {
    /// Protects client→server packets.
    pub client: [u8; DIGEST_LEN],
    /// Protects server→client packets.
    pub server: [u8; DIGEST_LEN],
}

impl LevelKeys {
    /// Key for packets sent by `side`.
    pub fn for_side(&self, side: KeySide) -> &[u8; DIGEST_LEN] {
        match side {
            KeySide::Client => &self.client,
            KeySide::Server => &self.server,
        }
    }
}

/// Derives Initial keys from the client's first destination connection ID
/// (RFC 9001 §5.2 analog). Both endpoints compute identical values.
pub fn initial_keys(client_dcid: &[u8]) -> LevelKeys {
    let secret = hkdf_extract(INITIAL_SALT, client_dcid);
    LevelKeys {
        client: hkdf_expand_label(&secret, "client in"),
        server: hkdf_expand_label(&secret, "server in"),
    }
}

/// Derives Handshake keys from the CH..SH transcript hash.
pub fn handshake_keys(transcript_hash: &[u8; DIGEST_LEN]) -> LevelKeys {
    let secret = hkdf_extract(b"hs derived", transcript_hash);
    LevelKeys {
        client: hkdf_expand_label(&secret, "c hs traffic"),
        server: hkdf_expand_label(&secret, "s hs traffic"),
    }
}

/// Derives Application keys from the CH..server-Finished transcript hash.
pub fn application_keys(transcript_hash: &[u8; DIGEST_LEN]) -> LevelKeys {
    let secret = hkdf_extract(b"ap derived", transcript_hash);
    LevelKeys {
        client: hkdf_expand_label(&secret, "c ap traffic"),
        server: hkdf_expand_label(&secret, "s ap traffic"),
    }
}

/// Derives the resumption secret from the full-handshake transcript hash
/// including the client Finished (RFC 8446's `resumption_master_secret`
/// analog). Both endpoints compute the same value, which is what lets a
/// later abbreviated handshake share keys without a certificate flight.
pub fn resumption_secret(transcript_hash: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    let secret = hkdf_extract(b"res derived", transcript_hash);
    hkdf_expand_label(&secret, "res master")
}

/// Derives 0-RTT (early data) keys from a resumption secret. The client
/// computes them from its cached ticket before the first flight; the
/// server after validating the ticket in the ClientHello — so 0-RTT
/// packets are protected before any handshake byte returns.
pub fn early_keys(resumption_secret: &[u8; DIGEST_LEN]) -> LevelKeys {
    let secret = hkdf_extract(b"early derived", resumption_secret);
    LevelKeys {
        client: hkdf_expand_label(&secret, "c e traffic"),
        server: hkdf_expand_label(&secret, "s e traffic"),
    }
}

/// AEAD-like tag length (matches the wire crate's `AEAD_TAG_LEN`).
pub const TAG_LEN: usize = 16;

/// Computes the 16-byte authentication tag for a packet: truncated
/// HMAC over packet number and payload under the direction key.
pub fn seal_tag(key: &[u8; DIGEST_LEN], pn: u64, payload: &[u8]) -> [u8; TAG_LEN] {
    let mut msg = Vec::with_capacity(8 + payload.len());
    msg.extend_from_slice(&pn.to_be_bytes());
    msg.extend_from_slice(payload);
    let full = hmac_sha256(key, &msg);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&full[..TAG_LEN]);
    tag
}

/// Verifies a packet tag. Constant-time comparison is unnecessary in a
/// simulation but costs nothing.
pub fn verify_tag(key: &[u8; DIGEST_LEN], pn: u64, payload: &[u8], tag: &[u8; TAG_LEN]) -> bool {
    let expect = seal_tag(key, pn, payload);
    expect
        .iter()
        .zip(tag.iter())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
        == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_keys_agree_between_endpoints() {
        let dcid = [7u8; 8];
        assert_eq!(initial_keys(&dcid), initial_keys(&dcid));
    }

    #[test]
    fn initial_keys_depend_on_dcid() {
        assert_ne!(initial_keys(&[1u8; 8]), initial_keys(&[2u8; 8]));
    }

    #[test]
    fn client_and_server_directions_differ() {
        let k = initial_keys(&[3u8; 8]);
        assert_ne!(k.client, k.server);
        assert_eq!(k.for_side(KeySide::Client), &k.client);
        assert_eq!(k.for_side(KeySide::Server), &k.server);
    }

    #[test]
    fn levels_differ_for_same_transcript() {
        let th = [9u8; 32];
        assert_ne!(handshake_keys(&th), application_keys(&th));
    }

    #[test]
    fn resumption_and_early_keys_are_deterministic_and_distinct() {
        let th = [7u8; 32];
        let res = resumption_secret(&th);
        assert_eq!(res, resumption_secret(&th));
        assert_ne!(res, resumption_secret(&[8u8; 32]));
        let early = early_keys(&res);
        assert_eq!(early, early_keys(&res));
        assert_ne!(early, handshake_keys(&th));
        assert_ne!(early, application_keys(&th));
        assert_ne!(early.client, early.server);
    }

    #[test]
    fn seal_and_verify_roundtrip() {
        let k = initial_keys(&[4u8; 8]);
        let tag = seal_tag(&k.client, 5, b"payload");
        assert!(verify_tag(&k.client, 5, b"payload", &tag));
        assert!(!verify_tag(&k.client, 6, b"payload", &tag));
        assert!(!verify_tag(&k.client, 5, b"payloae", &tag));
        assert!(!verify_tag(&k.server, 5, b"payload", &tag));
    }
}
