//! Session resumption: tickets, the stateless ticket codec, and the
//! client-side session cache.
//!
//! Mirrors the *shape* of TLS 1.3 resumption (RFC 8446 §4.6.1 / §2.2):
//! after a completed handshake both endpoints derive the same resumption
//! secret from the transcript; the server wraps it into an opaque,
//! self-authenticating ticket (stateless, keyed by the server's ticket
//! key) and sends it in a NewSessionTicket; the client stores
//! `(ticket, secret)` and offers the ticket in a later ClientHello to run
//! an abbreviated PSK handshake — the certificate flight disappears, and
//! with it the Δt the paper's WFC servers wait out. 0-RTT early-data keys
//! derive from the same secret on both sides.
//!
//! Everything here is a pure function of its inputs: the same transcript
//! and ticket key always produce the same ticket bytes, which is what
//! keeps resumption scenarios byte-reproducible from the scenario seed.

use crate::sha256::hmac_sha256;

/// Wire size of an opaque session ticket: the masked 32-byte resumption
/// secret plus a 16-byte authenticity tag.
pub const TICKET_LEN: usize = 48;

/// A resumption ticket as stored by the client: the opaque wire bytes the
/// server minted plus the resumption secret the client derived from its
/// own transcript (the client never learns the server's ticket key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTicket {
    /// Opaque ticket bytes (echoed verbatim in the resumption CH).
    pub ticket: [u8; TICKET_LEN],
    /// The resumption secret both sides derived from the priming
    /// handshake's transcript.
    pub secret: [u8; 32],
    /// Advertised ticket lifetime in seconds.
    pub lifetime_secs: u32,
    /// The issuing server advertised 0-RTT early data support.
    pub early_data_allowed: bool,
}

/// Server-side resumption policy (the per-deployment behaviour
/// `rq-profiles` models: tickets not offered, 0-RTT accepted or
/// rejected, ticket lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerResumption {
    /// Issue a NewSessionTicket after every completed handshake.
    pub issue_tickets: bool,
    /// Accept valid tickets for abbreviated (PSK) handshakes.
    pub accept_resumption: bool,
    /// Advertise 0-RTT support in issued tickets. A client only offers
    /// early data when its ticket advertised it (RFC 8446 §4.2.10).
    pub advertise_early_data: bool,
    /// Accept 0-RTT early data on resumed handshakes. Deployments can
    /// advertise support and still reject a given attempt (key rotation,
    /// load shedding) — that mismatch is the reject/retransmit path.
    pub accept_early_data: bool,
    /// Lifetime advertised in issued tickets, seconds.
    pub ticket_lifetime_secs: u32,
}

impl ServerResumption {
    /// Resumption fully disabled (the pre-resumption default: no ticket
    /// bytes on the wire, so legacy traces stay byte-identical).
    pub fn disabled() -> Self {
        ServerResumption {
            issue_tickets: false,
            accept_resumption: false,
            advertise_early_data: false,
            accept_early_data: false,
            ticket_lifetime_secs: 0,
        }
    }

    /// Tickets offered, resumption and 0-RTT accepted.
    pub fn accepting(ticket_lifetime_secs: u32) -> Self {
        ServerResumption {
            issue_tickets: true,
            accept_resumption: true,
            advertise_early_data: true,
            accept_early_data: true,
            ticket_lifetime_secs,
        }
    }

    /// Tickets offered and resumption accepted; 0-RTT is advertised but
    /// every attempt is rejected (early data must be retransmitted as
    /// 1-RTT).
    pub fn rejecting_early_data(ticket_lifetime_secs: u32) -> Self {
        ServerResumption {
            accept_early_data: false,
            ..ServerResumption::accepting(ticket_lifetime_secs)
        }
    }
}

impl Default for ServerResumption {
    fn default() -> Self {
        ServerResumption::disabled()
    }
}

/// Keystream masking the resumption secret inside a ticket.
fn ticket_mask(ticket_key: u64) -> [u8; 32] {
    hmac_sha256(&ticket_key.to_be_bytes(), b"reacked ticket mask")
}

/// Mints the opaque ticket for `secret` under `ticket_key`: the masked
/// secret followed by a truncated-HMAC authenticity tag. Stateless on
/// the server — the same key recovers the secret from the bytes alone.
pub fn mint_ticket(ticket_key: u64, secret: &[u8; 32]) -> [u8; TICKET_LEN] {
    let mask = ticket_mask(ticket_key);
    let mut out = [0u8; TICKET_LEN];
    for i in 0..32 {
        out[i] = secret[i] ^ mask[i];
    }
    let tag = hmac_sha256(&ticket_key.to_be_bytes(), &out[..32]);
    out[32..].copy_from_slice(&tag[..16]);
    out
}

/// Validates a ticket under `ticket_key` and recovers the resumption
/// secret; `None` for tickets minted under a different key (the server
/// falls back to a full handshake).
pub fn open_ticket(ticket_key: u64, ticket: &[u8; TICKET_LEN]) -> Option<[u8; 32]> {
    let tag = hmac_sha256(&ticket_key.to_be_bytes(), &ticket[..32]);
    if ticket[32..] != tag[..16] {
        return None;
    }
    let mask = ticket_mask(ticket_key);
    let mut secret = [0u8; 32];
    for i in 0..32 {
        secret[i] = ticket[i] ^ mask[i];
    }
    Some(secret)
}

/// A bounded client-side session cache: one ticket per server name, with
/// deterministic insertion-order eviction (no clocks, no randomness — a
/// cache operation sequence always produces the same state).
#[derive(Debug, Clone, Default)]
pub struct SessionCache {
    cap: usize,
    entries: Vec<(String, SessionTicket)>,
}

impl SessionCache {
    /// An empty cache holding at most `cap` tickets.
    pub fn new(cap: usize) -> Self {
        SessionCache {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    /// Stores `ticket` for `server`, replacing an existing entry (the
    /// replacement moves to the back of the eviction order) and evicting
    /// the oldest entry when full.
    pub fn insert(&mut self, server: &str, ticket: SessionTicket) {
        if let Some(pos) = self.entries.iter().position(|(n, _)| n == server) {
            self.entries.remove(pos);
        }
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push((server.to_string(), ticket));
    }

    /// The cached ticket for `server`, if any.
    pub fn lookup(&self, server: &str) -> Option<&SessionTicket> {
        self.entries
            .iter()
            .find(|(n, _)| n == server)
            .map(|(_, t)| t)
    }

    /// Removes and returns the ticket for `server` (single-use tickets).
    pub fn take(&mut self, server: &str) -> Option<SessionTicket> {
        let pos = self.entries.iter().position(|(n, _)| n == server)?;
        Some(self.entries.remove(pos).1)
    }

    /// Number of cached tickets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(mark: u8) -> SessionTicket {
        SessionTicket {
            ticket: [mark; TICKET_LEN],
            secret: [mark; 32],
            lifetime_secs: 7200,
            early_data_allowed: true,
        }
    }

    #[test]
    fn mint_open_roundtrip() {
        let secret = [0x5A; 32];
        let t = mint_ticket(7, &secret);
        assert_eq!(open_ticket(7, &t), Some(secret));
    }

    #[test]
    fn tickets_are_deterministic() {
        let secret = [0x11; 32];
        assert_eq!(mint_ticket(99, &secret), mint_ticket(99, &secret));
        assert_ne!(mint_ticket(99, &secret), mint_ticket(100, &secret));
    }

    #[test]
    fn wrong_key_rejects_ticket() {
        let t = mint_ticket(1, &[0x22; 32]);
        assert_eq!(open_ticket(2, &t), None);
    }

    #[test]
    fn corrupt_ticket_rejected() {
        let mut t = mint_ticket(1, &[0x22; 32]);
        t[0] ^= 0x01;
        assert_eq!(open_ticket(1, &t), None);
    }

    #[test]
    fn cache_insert_lookup_take() {
        let mut c = SessionCache::new(4);
        assert!(c.is_empty());
        c.insert("a.example", ticket(1));
        c.insert("b.example", ticket(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a.example"), Some(&ticket(1)));
        assert_eq!(c.take("a.example"), Some(ticket(1)));
        assert_eq!(c.lookup("a.example"), None);
    }

    #[test]
    fn cache_evicts_oldest_deterministically() {
        let mut c = SessionCache::new(2);
        c.insert("a", ticket(1));
        c.insert("b", ticket(2));
        c.insert("c", ticket(3)); // evicts "a"
        assert_eq!(c.lookup("a"), None);
        assert!(c.lookup("b").is_some() && c.lookup("c").is_some());
        // Re-inserting refreshes the eviction position.
        c.insert("b", ticket(4));
        c.insert("d", ticket(5)); // evicts "c", not the refreshed "b"
        assert_eq!(c.lookup("c"), None);
        assert_eq!(c.lookup("b"), Some(&ticket(4)));
    }

    #[test]
    fn resumption_presets() {
        let acc = ServerResumption::accepting(7200);
        assert!(acc.issue_tickets && acc.accept_resumption && acc.accept_early_data);
        assert!(acc.advertise_early_data);
        let rej = ServerResumption::rejecting_early_data(7200);
        assert!(rej.issue_tickets && rej.accept_resumption && !rej.accept_early_data);
        // Advertise-then-reject: the mismatch that exercises the 0-RTT
        // reject/retransmit path with an RFC-legal client offer.
        assert!(rej.advertise_early_data);
        let off = ServerResumption::default();
        assert!(!off.issue_tickets && !off.accept_resumption && !off.advertise_early_data);
    }
}
