//! Session resumption: tickets, the stateless ticket codec, and the
//! client-side session cache.
//!
//! Mirrors the *shape* of TLS 1.3 resumption (RFC 8446 §4.6.1 / §2.2):
//! after a completed handshake both endpoints derive the same resumption
//! secret from the transcript; the server wraps it into an opaque,
//! self-authenticating ticket (stateless, keyed by the server's ticket
//! key) and sends it in a NewSessionTicket; the client stores
//! `(ticket, secret)` and offers the ticket in a later ClientHello to run
//! an abbreviated PSK handshake — the certificate flight disappears, and
//! with it the Δt the paper's WFC servers wait out. 0-RTT early-data keys
//! derive from the same secret on both sides.
//!
//! Everything here is a pure function of its inputs: the same transcript
//! and ticket key always produce the same ticket bytes, which is what
//! keeps resumption scenarios byte-reproducible from the scenario seed.

use crate::sha256::hmac_sha256;

/// Wire size of an opaque session ticket: the masked 32-byte resumption
/// secret plus a 16-byte authenticity tag.
pub const TICKET_LEN: usize = 48;

/// A resumption ticket as stored by the client: the opaque wire bytes the
/// server minted plus the resumption secret the client derived from its
/// own transcript (the client never learns the server's ticket key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTicket {
    /// Opaque ticket bytes (echoed verbatim in the resumption CH).
    pub ticket: [u8; TICKET_LEN],
    /// The resumption secret both sides derived from the priming
    /// handshake's transcript.
    pub secret: [u8; 32],
    /// Advertised ticket lifetime in seconds.
    pub lifetime_secs: u32,
    /// The issuing server advertised 0-RTT early data support.
    pub early_data_allowed: bool,
}

/// Server-side resumption policy (the per-deployment behaviour
/// `rq-profiles` models: tickets not offered, 0-RTT accepted or
/// rejected, ticket lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerResumption {
    /// Issue a NewSessionTicket after every completed handshake.
    pub issue_tickets: bool,
    /// Accept valid tickets for abbreviated (PSK) handshakes.
    pub accept_resumption: bool,
    /// Advertise 0-RTT support in issued tickets. A client only offers
    /// early data when its ticket advertised it (RFC 8446 §4.2.10).
    pub advertise_early_data: bool,
    /// Accept 0-RTT early data on resumed handshakes. Deployments can
    /// advertise support and still reject a given attempt (key rotation,
    /// load shedding) — that mismatch is the reject/retransmit path.
    pub accept_early_data: bool,
    /// Lifetime advertised in issued tickets, seconds.
    pub ticket_lifetime_secs: u32,
}

impl ServerResumption {
    /// Resumption fully disabled (the pre-resumption default: no ticket
    /// bytes on the wire, so legacy traces stay byte-identical).
    pub fn disabled() -> Self {
        ServerResumption {
            issue_tickets: false,
            accept_resumption: false,
            advertise_early_data: false,
            accept_early_data: false,
            ticket_lifetime_secs: 0,
        }
    }

    /// Tickets offered, resumption and 0-RTT accepted.
    pub fn accepting(ticket_lifetime_secs: u32) -> Self {
        ServerResumption {
            issue_tickets: true,
            accept_resumption: true,
            advertise_early_data: true,
            accept_early_data: true,
            ticket_lifetime_secs,
        }
    }

    /// Tickets offered and resumption accepted; 0-RTT is advertised but
    /// every attempt is rejected (early data must be retransmitted as
    /// 1-RTT).
    pub fn rejecting_early_data(ticket_lifetime_secs: u32) -> Self {
        ServerResumption {
            accept_early_data: false,
            ..ServerResumption::accepting(ticket_lifetime_secs)
        }
    }
}

impl Default for ServerResumption {
    fn default() -> Self {
        ServerResumption::disabled()
    }
}

/// A server's rotating ticket-key schedule.
///
/// Real deployments rotate the session-ticket encryption key on a fixed
/// period and keep a small window of previous keys valid, so tickets
/// minted shortly before a rotation still resume (RFC 8446 §4.6.1 leaves
/// the policy to the server; production stacks typically run 2–3
/// overlapping keys). The schedule is a pure function of
/// `(base_key, period, epoch)`: every epoch's key is derived by a
/// SplitMix64-style avalanche of the base key, so a server replica — or a
/// simulation shard — reconstructs the exact same keys from the seed
/// alone, with no shared mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TicketKeySchedule {
    /// Seed all epoch keys derive from.
    pub base_key: u64,
    /// Rotation period in seconds; `0` disables rotation (the schedule
    /// pins `base_key` forever — the legacy single-key behaviour).
    pub period_secs: u64,
    /// How many *previous* epoch keys stay acceptable after a rotation.
    /// `0` means a rotation instantly invalidates outstanding tickets.
    pub overlap_epochs: u32,
}

impl TicketKeySchedule {
    /// A schedule that never rotates: `key` mints and validates every
    /// ticket, exactly like the pre-schedule single-key servers.
    pub fn fixed(key: u64) -> Self {
        TicketKeySchedule {
            base_key: key,
            period_secs: 0,
            overlap_epochs: 0,
        }
    }

    /// A rotating schedule: a fresh key every `period_secs`, with the
    /// `overlap_epochs` most recent predecessors still accepted.
    pub fn rotating(base_key: u64, period_secs: u64, overlap_epochs: u32) -> Self {
        TicketKeySchedule {
            base_key,
            period_secs,
            overlap_epochs,
        }
    }

    /// Whether this schedule ever rotates.
    pub fn rotates(&self) -> bool {
        self.period_secs > 0
    }

    /// The schedule after a crash that lost the previous-epoch keys: only
    /// the current epoch's key validates, so tickets minted before the
    /// last rotation degrade to full handshakes (the measured
    /// invalid-ticket fallback) instead of resuming.
    pub fn forget_old_epochs(self) -> Self {
        TicketKeySchedule {
            overlap_epochs: 0,
            ..self
        }
    }

    /// The rotation epoch containing time `now_secs`.
    pub fn epoch_at(&self, now_secs: u64) -> u64 {
        if self.period_secs == 0 {
            0
        } else {
            now_secs / self.period_secs
        }
    }

    /// The ticket key of `epoch` (epoch 0 of a non-rotating schedule is
    /// `base_key` itself, keeping legacy wire images byte-identical).
    pub fn key_for_epoch(&self, epoch: u64) -> u64 {
        if !self.rotates() || epoch == 0 {
            return self.base_key;
        }
        // SplitMix64 finalizer over (base_key, epoch): full avalanche, so
        // adjacent epochs share no key structure.
        let mut z = self
            .base_key
            .wrapping_add(epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The key a ticket minted at `now_secs` is sealed under.
    pub fn mint_key(&self, now_secs: u64) -> u64 {
        self.key_for_epoch(self.epoch_at(now_secs))
    }

    /// Keys accepted at `now_secs`, newest first: the current epoch's key
    /// followed by up to `overlap_epochs` predecessors.
    pub fn accept_keys(&self, now_secs: u64) -> Vec<u64> {
        let epoch = self.epoch_at(now_secs);
        let oldest = epoch.saturating_sub(self.overlap_epochs as u64);
        (oldest..=epoch)
            .rev()
            .map(|e| self.key_for_epoch(e))
            .collect()
    }
}

impl Default for TicketKeySchedule {
    fn default() -> Self {
        TicketKeySchedule::fixed(0x7E11_C3E7)
    }
}

/// Keystream masking the resumption secret inside a ticket.
fn ticket_mask(ticket_key: u64) -> [u8; 32] {
    hmac_sha256(&ticket_key.to_be_bytes(), b"reacked ticket mask")
}

/// Mints the opaque ticket for `secret` under `ticket_key`: the masked
/// secret followed by a truncated-HMAC authenticity tag. Stateless on
/// the server — the same key recovers the secret from the bytes alone.
pub fn mint_ticket(ticket_key: u64, secret: &[u8; 32]) -> [u8; TICKET_LEN] {
    let mask = ticket_mask(ticket_key);
    let mut out = [0u8; TICKET_LEN];
    for i in 0..32 {
        out[i] = secret[i] ^ mask[i];
    }
    let tag = hmac_sha256(&ticket_key.to_be_bytes(), &out[..32]);
    out[32..].copy_from_slice(&tag[..16]);
    out
}

/// Validates a ticket under `ticket_key` and recovers the resumption
/// secret; `None` for tickets minted under a different key (the server
/// falls back to a full handshake).
pub fn open_ticket(ticket_key: u64, ticket: &[u8; TICKET_LEN]) -> Option<[u8; 32]> {
    let tag = hmac_sha256(&ticket_key.to_be_bytes(), &ticket[..32]);
    if ticket[32..] != tag[..16] {
        return None;
    }
    let mask = ticket_mask(ticket_key);
    let mut secret = [0u8; 32];
    for i in 0..32 {
        secret[i] = ticket[i] ^ mask[i];
    }
    Some(secret)
}

/// A bounded client-side session cache: one ticket per server name, with
/// deterministic insertion-order eviction (no clocks, no randomness — a
/// cache operation sequence always produces the same state).
#[derive(Debug, Clone, Default)]
pub struct SessionCache {
    cap: usize,
    entries: Vec<(String, SessionTicket)>,
}

impl SessionCache {
    /// An empty cache holding at most `cap` tickets.
    pub fn new(cap: usize) -> Self {
        SessionCache {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    /// Stores `ticket` for `server`, replacing an existing entry (the
    /// replacement moves to the back of the eviction order) and evicting
    /// the oldest entry when full.
    pub fn insert(&mut self, server: &str, ticket: SessionTicket) {
        if let Some(pos) = self.entries.iter().position(|(n, _)| n == server) {
            self.entries.remove(pos);
        }
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push((server.to_string(), ticket));
    }

    /// The cached ticket for `server`, if any.
    pub fn lookup(&self, server: &str) -> Option<&SessionTicket> {
        self.entries
            .iter()
            .find(|(n, _)| n == server)
            .map(|(_, t)| t)
    }

    /// Removes and returns the ticket for `server` (single-use tickets).
    pub fn take(&mut self, server: &str) -> Option<SessionTicket> {
        let pos = self.entries.iter().position(|(n, _)| n == server)?;
        Some(self.entries.remove(pos).1)
    }

    /// Number of cached tickets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticket(mark: u8) -> SessionTicket {
        SessionTicket {
            ticket: [mark; TICKET_LEN],
            secret: [mark; 32],
            lifetime_secs: 7200,
            early_data_allowed: true,
        }
    }

    #[test]
    fn mint_open_roundtrip() {
        let secret = [0x5A; 32];
        let t = mint_ticket(7, &secret);
        assert_eq!(open_ticket(7, &t), Some(secret));
    }

    #[test]
    fn tickets_are_deterministic() {
        let secret = [0x11; 32];
        assert_eq!(mint_ticket(99, &secret), mint_ticket(99, &secret));
        assert_ne!(mint_ticket(99, &secret), mint_ticket(100, &secret));
    }

    #[test]
    fn wrong_key_rejects_ticket() {
        let t = mint_ticket(1, &[0x22; 32]);
        assert_eq!(open_ticket(2, &t), None);
    }

    #[test]
    fn corrupt_ticket_rejected() {
        let mut t = mint_ticket(1, &[0x22; 32]);
        t[0] ^= 0x01;
        assert_eq!(open_ticket(1, &t), None);
    }

    #[test]
    fn cache_insert_lookup_take() {
        let mut c = SessionCache::new(4);
        assert!(c.is_empty());
        c.insert("a.example", ticket(1));
        c.insert("b.example", ticket(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a.example"), Some(&ticket(1)));
        assert_eq!(c.take("a.example"), Some(ticket(1)));
        assert_eq!(c.lookup("a.example"), None);
    }

    #[test]
    fn cache_evicts_oldest_deterministically() {
        let mut c = SessionCache::new(2);
        c.insert("a", ticket(1));
        c.insert("b", ticket(2));
        c.insert("c", ticket(3)); // evicts "a"
        assert_eq!(c.lookup("a"), None);
        assert!(c.lookup("b").is_some() && c.lookup("c").is_some());
        // Re-inserting refreshes the eviction position.
        c.insert("b", ticket(4));
        c.insert("d", ticket(5)); // evicts "c", not the refreshed "b"
        assert_eq!(c.lookup("c"), None);
        assert_eq!(c.lookup("b"), Some(&ticket(4)));
    }

    #[test]
    fn fixed_schedule_never_rotates() {
        let s = TicketKeySchedule::fixed(42);
        assert!(!s.rotates());
        for now in [0u64, 1, 3600, u64::MAX / 2] {
            assert_eq!(s.mint_key(now), 42);
            assert_eq!(s.accept_keys(now), vec![42]);
        }
    }

    #[test]
    fn rotating_schedule_changes_key_per_epoch() {
        let s = TicketKeySchedule::rotating(7, 3600, 1);
        let k0 = s.mint_key(10);
        let k1 = s.mint_key(3600);
        let k2 = s.mint_key(7200);
        assert_eq!(k0, 7, "epoch 0 pins the base key");
        assert_ne!(k0, k1);
        assert_ne!(k1, k2);
        assert_ne!(k0, k2);
        // Within an epoch the key is stable.
        assert_eq!(s.mint_key(3600), s.mint_key(7199));
    }

    #[test]
    fn overlap_window_bounds_accepted_keys() {
        let s = TicketKeySchedule::rotating(9, 100, 2);
        // Epoch 5: keys for epochs 5, 4, 3 accepted — newest first.
        let keys = s.accept_keys(510);
        assert_eq!(
            keys,
            vec![s.key_for_epoch(5), s.key_for_epoch(4), s.key_for_epoch(3)]
        );
        // A ticket minted in epoch 2 no longer opens in epoch 5…
        let old = mint_ticket(s.key_for_epoch(2), &[0x33; 32]);
        assert!(keys.iter().all(|k| open_ticket(*k, &old).is_none()));
        // …but one from epoch 3 (inside the overlap) still does.
        let ok = mint_ticket(s.key_for_epoch(3), &[0x33; 32]);
        assert!(keys.iter().any(|k| open_ticket(*k, &ok).is_some()));
        // Near t=0 the window clips at epoch 0 without underflow.
        assert_eq!(s.accept_keys(50), vec![s.key_for_epoch(0)]);
    }

    #[test]
    fn schedule_is_a_pure_function_of_base_key() {
        let a = TicketKeySchedule::rotating(1234, 60, 3);
        let b = TicketKeySchedule::rotating(1234, 60, 3);
        assert_eq!(a.accept_keys(100_000), b.accept_keys(100_000));
        let c = TicketKeySchedule::rotating(1235, 60, 3);
        assert_ne!(a.mint_key(100_000), c.mint_key(100_000));
    }

    #[test]
    fn resumption_presets() {
        let acc = ServerResumption::accepting(7200);
        assert!(acc.issue_tickets && acc.accept_resumption && acc.accept_early_data);
        assert!(acc.advertise_early_data);
        let rej = ServerResumption::rejecting_early_data(7200);
        assert!(rej.issue_tickets && rej.accept_resumption && !rej.accept_early_data);
        // Advertise-then-reject: the mismatch that exercises the 0-RTT
        // reject/retransmit path with an RFC-legal client offer.
        assert!(rej.advertise_early_data);
        let off = ServerResumption::default();
        assert!(!off.issue_tickets && !off.accept_resumption && !off.advertise_early_data);
    }
}
