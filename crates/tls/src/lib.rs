//! Simulated TLS 1.3 for the ReACKed-QUICer reproduction.
//!
//! Implements the *shape* of the QUIC-TLS handshake — message framing and
//! byte-accurate sizes, per-level key availability, a server-side pause
//! while the certificate is fetched from the store — without cryptographic
//! strength (see `DESIGN.md` for the substitution rationale). The paper's
//! effects under study are timing effects of message sizes and key
//! availability, both of which this crate preserves exactly.

pub mod keys;
pub mod messages;
pub mod resumption;
pub mod session;
pub mod sha256;

pub use keys::{
    application_keys, early_keys, handshake_keys, initial_keys, resumption_secret, seal_tag,
    verify_tag, KeySide, Level, LevelKeys, TAG_LEN,
};
pub use messages::{
    HandshakeMessage, HandshakeType, CERT_LARGE, CERT_SMALL, NEW_SESSION_TICKET_LEN,
};
pub use resumption::{
    mint_ticket, open_ticket, ServerResumption, SessionCache, SessionTicket, TicketKeySchedule,
    TICKET_LEN,
};
pub use session::{ClientConfig, Role, ServerConfig, TlsEvent, TlsSession};

/// Errors raised by the TLS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A handshake message with an unknown type code.
    UnknownMessage(u8),
    /// A message arrived that the state machine cannot accept.
    UnexpectedMessage(&'static str),
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::UnknownMessage(c) => write!(f, "unknown handshake message type {c}"),
            TlsError::UnexpectedMessage(m) => write!(f, "unexpected handshake message: {m}"),
        }
    }
}

impl std::error::Error for TlsError {}
