//! Simulated TLS 1.3 handshake messages.
//!
//! Each message uses the real TLS handshake framing — a 1-byte type and a
//! 24-bit length — and bodies sized to match typical deployments, because
//! the paper's amplification-limit results depend on the *byte sizes* of
//! the server's first flight (certificate 1,212 B vs 5,113 B).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::TlsError;

/// TLS handshake message types (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandshakeType {
    /// ClientHello.
    ClientHello,
    /// ServerHello.
    ServerHello,
    /// EncryptedExtensions.
    EncryptedExtensions,
    /// Certificate.
    Certificate,
    /// CertificateVerify.
    CertificateVerify,
    /// Finished.
    Finished,
}

impl HandshakeType {
    /// Wire code (RFC 8446 §4).
    pub fn code(self) -> u8 {
        match self {
            HandshakeType::ClientHello => 1,
            HandshakeType::ServerHello => 2,
            HandshakeType::EncryptedExtensions => 8,
            HandshakeType::Certificate => 11,
            HandshakeType::CertificateVerify => 15,
            HandshakeType::Finished => 20,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u8) -> Result<Self, TlsError> {
        Ok(match code {
            1 => HandshakeType::ClientHello,
            2 => HandshakeType::ServerHello,
            8 => HandshakeType::EncryptedExtensions,
            11 => HandshakeType::Certificate,
            15 => HandshakeType::CertificateVerify,
            20 => HandshakeType::Finished,
            other => return Err(TlsError::UnknownMessage(other)),
        })
    }
}

/// Default total ClientHello size (framing + body) in bytes: a typical
/// browser CH with SNI/ALPN/key-share runs ~280–350 bytes.
pub const DEFAULT_CLIENT_HELLO_LEN: usize = 320;
/// Total ServerHello size in bytes (90-byte body + 4-byte framing is the
/// common X25519 SH shape).
pub const SERVER_HELLO_LEN: usize = 94;
/// Total EncryptedExtensions size.
pub const ENCRYPTED_EXTENSIONS_LEN: usize = 70;
/// Total CertificateVerify size (ECDSA-P256 signature).
pub const CERTIFICATE_VERIFY_LEN: usize = 268;
/// Total Finished size (32-byte verify-data + framing).
pub const FINISHED_LEN: usize = 36;

/// The paper's small certificate chain: allows a 1-RTT handshake.
pub const CERT_SMALL: usize = 1212;
/// The paper's large certificate chain: exceeds the 3x anti-amplification
/// budget of a 1,200-byte client Initial.
pub const CERT_LARGE: usize = 5113;

/// A parsed handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeMessage {
    /// Message type.
    pub ty: HandshakeType,
    /// Opaque body bytes (content is simulated; only sizes and the
    /// embedded metadata below matter).
    pub body: Bytes,
}

impl HandshakeMessage {
    /// Total wire size (4-byte header + body).
    pub fn wire_len(&self) -> usize {
        4 + self.body.len()
    }

    /// Encodes header + body.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.ty.code());
        let len = self.body.len();
        assert!(len < 1 << 24);
        buf.put_u8((len >> 16) as u8);
        buf.put_u8((len >> 8) as u8);
        buf.put_u8(len as u8);
        buf.put_slice(&self.body);
    }

    /// Decodes one message if a complete one is available; returns `None`
    /// when more bytes are needed.
    pub fn decode(buf: &mut impl Buf) -> Result<Option<HandshakeMessage>, TlsError> {
        if buf.remaining() < 4 {
            return Ok(None);
        }
        let chunk = buf.chunk();
        // Peek without consuming in case the body is incomplete.
        let (ty_code, len) = if chunk.len() >= 4 {
            (
                chunk[0],
                ((chunk[1] as usize) << 16) | ((chunk[2] as usize) << 8) | chunk[3] as usize,
            )
        } else {
            let mut head = [0u8; 4];
            let mut peek = buf.chunk();
            let mut copied = 0;
            while copied < 4 && !peek.is_empty() {
                head[copied] = peek[0];
                peek = &peek[1..];
                copied += 1;
            }
            (
                head[0],
                ((head[1] as usize) << 16) | ((head[2] as usize) << 8) | head[3] as usize,
            )
        };
        if buf.remaining() < 4 + len {
            return Ok(None);
        }
        buf.advance(4);
        let body = buf.copy_to_bytes(len);
        Ok(Some(HandshakeMessage {
            ty: HandshakeType::from_code(ty_code)?,
            body,
        }))
    }

    /// Builds a ClientHello of `total_len` bytes carrying a 32-byte random.
    pub fn client_hello(random: [u8; 32], total_len: usize) -> Self {
        assert!(total_len >= 4 + 32, "ClientHello must fit its random");
        let mut body = BytesMut::with_capacity(total_len - 4);
        body.put_slice(&random);
        body.resize(total_len - 4, 0x43); // 'C' filler standing in for extensions
        HandshakeMessage {
            ty: HandshakeType::ClientHello,
            body: body.freeze(),
        }
    }

    /// Builds a ServerHello carrying a 32-byte random.
    pub fn server_hello(random: [u8; 32]) -> Self {
        let mut body = BytesMut::with_capacity(SERVER_HELLO_LEN - 4);
        body.put_slice(&random);
        body.resize(SERVER_HELLO_LEN - 4, 0x53); // 'S'
        HandshakeMessage {
            ty: HandshakeType::ServerHello,
            body: body.freeze(),
        }
    }

    /// Builds EncryptedExtensions.
    pub fn encrypted_extensions() -> Self {
        HandshakeMessage {
            ty: HandshakeType::EncryptedExtensions,
            body: Bytes::from(vec![0x45; ENCRYPTED_EXTENSIONS_LEN - 4]),
        }
    }

    /// Builds a Certificate message whose *total* size is `total_len`
    /// (the paper quotes whole-chain sizes, e.g. 1,212 or 5,113 bytes).
    pub fn certificate(total_len: usize) -> Self {
        assert!(total_len > 4);
        HandshakeMessage {
            ty: HandshakeType::Certificate,
            body: Bytes::from(vec![0x30; total_len - 4]), // DER SEQUENCE filler
        }
    }

    /// Builds CertificateVerify.
    pub fn certificate_verify() -> Self {
        HandshakeMessage {
            ty: HandshakeType::CertificateVerify,
            body: Bytes::from(vec![0x56; CERTIFICATE_VERIFY_LEN - 4]),
        }
    }

    /// Builds Finished with the given 32-byte verify-data.
    pub fn finished(verify_data: [u8; 32]) -> Self {
        HandshakeMessage {
            ty: HandshakeType::Finished,
            body: Bytes::copy_from_slice(&verify_data),
        }
    }

    /// Extracts the 32-byte random from a CH/SH body.
    pub fn random(&self) -> Option<[u8; 32]> {
        if self.body.len() < 32 {
            return None;
        }
        let mut r = [0u8; 32];
        r.copy_from_slice(&self.body[..32]);
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: HandshakeMessage) {
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        assert_eq!(buf.len(), m.wire_len());
        let mut slice = buf.freeze();
        let out = HandshakeMessage::decode(&mut slice).unwrap().unwrap();
        assert_eq!(out, m);
        assert_eq!(slice.remaining(), 0);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(HandshakeMessage::client_hello(
            [1; 32],
            DEFAULT_CLIENT_HELLO_LEN,
        ));
        roundtrip(HandshakeMessage::server_hello([2; 32]));
        roundtrip(HandshakeMessage::encrypted_extensions());
        roundtrip(HandshakeMessage::certificate(CERT_SMALL));
        roundtrip(HandshakeMessage::certificate(CERT_LARGE));
        roundtrip(HandshakeMessage::certificate_verify());
        roundtrip(HandshakeMessage::finished([3; 32]));
    }

    #[test]
    fn sizes_match_constants() {
        assert_eq!(
            HandshakeMessage::client_hello([0; 32], DEFAULT_CLIENT_HELLO_LEN).wire_len(),
            DEFAULT_CLIENT_HELLO_LEN
        );
        assert_eq!(
            HandshakeMessage::server_hello([0; 32]).wire_len(),
            SERVER_HELLO_LEN
        );
        assert_eq!(
            HandshakeMessage::certificate(CERT_SMALL).wire_len(),
            CERT_SMALL
        );
        assert_eq!(
            HandshakeMessage::certificate(CERT_LARGE).wire_len(),
            CERT_LARGE
        );
        assert_eq!(
            HandshakeMessage::certificate_verify().wire_len(),
            CERTIFICATE_VERIFY_LEN
        );
        assert_eq!(HandshakeMessage::finished([0; 32]).wire_len(), FINISHED_LEN);
    }

    #[test]
    fn partial_decode_returns_none() {
        let m = HandshakeMessage::certificate(100);
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let mut partial = Bytes::copy_from_slice(&buf[..50]);
        assert_eq!(HandshakeMessage::decode(&mut partial).unwrap(), None);
        // Nothing consumed on partial decode.
        assert_eq!(partial.remaining(), 50);
    }

    #[test]
    fn streaming_decode_across_messages() {
        let mut buf = BytesMut::new();
        HandshakeMessage::server_hello([9; 32]).encode(&mut buf);
        HandshakeMessage::encrypted_extensions().encode(&mut buf);
        let mut stream = buf.freeze();
        let m1 = HandshakeMessage::decode(&mut stream).unwrap().unwrap();
        let m2 = HandshakeMessage::decode(&mut stream).unwrap().unwrap();
        assert_eq!(m1.ty, HandshakeType::ServerHello);
        assert_eq!(m2.ty, HandshakeType::EncryptedExtensions);
        assert_eq!(HandshakeMessage::decode(&mut stream).unwrap(), None);
    }

    #[test]
    fn random_extraction() {
        let m = HandshakeMessage::client_hello([7; 32], 200);
        assert_eq!(m.random(), Some([7; 32]));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut raw = Bytes::copy_from_slice(&[99, 0, 0, 1, 0]);
        assert!(matches!(
            HandshakeMessage::decode(&mut raw),
            Err(TlsError::UnknownMessage(99))
        ));
    }
}
