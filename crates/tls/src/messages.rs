//! Simulated TLS 1.3 handshake messages.
//!
//! Each message uses the real TLS handshake framing — a 1-byte type and a
//! 24-bit length — and bodies sized to match typical deployments, because
//! the paper's amplification-limit results depend on the *byte sizes* of
//! the server's first flight (certificate 1,212 B vs 5,113 B).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::resumption::TICKET_LEN;
use crate::TlsError;

/// TLS handshake message types (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandshakeType {
    /// ClientHello.
    ClientHello,
    /// ServerHello.
    ServerHello,
    /// NewSessionTicket (post-handshake, 1-RTT level).
    NewSessionTicket,
    /// EncryptedExtensions.
    EncryptedExtensions,
    /// Certificate.
    Certificate,
    /// CertificateVerify.
    CertificateVerify,
    /// Finished.
    Finished,
}

impl HandshakeType {
    /// Wire code (RFC 8446 §4).
    pub fn code(self) -> u8 {
        match self {
            HandshakeType::ClientHello => 1,
            HandshakeType::ServerHello => 2,
            HandshakeType::NewSessionTicket => 4,
            HandshakeType::EncryptedExtensions => 8,
            HandshakeType::Certificate => 11,
            HandshakeType::CertificateVerify => 15,
            HandshakeType::Finished => 20,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u8) -> Result<Self, TlsError> {
        Ok(match code {
            1 => HandshakeType::ClientHello,
            2 => HandshakeType::ServerHello,
            4 => HandshakeType::NewSessionTicket,
            8 => HandshakeType::EncryptedExtensions,
            11 => HandshakeType::Certificate,
            15 => HandshakeType::CertificateVerify,
            20 => HandshakeType::Finished,
            other => return Err(TlsError::UnknownMessage(other)),
        })
    }
}

/// Default total ClientHello size (framing + body) in bytes: a typical
/// browser CH with SNI/ALPN/key-share runs ~280–350 bytes.
pub const DEFAULT_CLIENT_HELLO_LEN: usize = 320;
/// Total ServerHello size in bytes (90-byte body + 4-byte framing is the
/// common X25519 SH shape).
pub const SERVER_HELLO_LEN: usize = 94;
/// Total EncryptedExtensions size.
pub const ENCRYPTED_EXTENSIONS_LEN: usize = 70;
/// Total CertificateVerify size (ECDSA-P256 signature).
pub const CERTIFICATE_VERIFY_LEN: usize = 268;
/// Total Finished size (32-byte verify-data + framing).
pub const FINISHED_LEN: usize = 36;

/// The paper's small certificate chain: allows a 1-RTT handshake.
pub const CERT_SMALL: usize = 1212;
/// The paper's large certificate chain: exceeds the 3x anti-amplification
/// budget of a 1,200-byte client Initial.
pub const CERT_LARGE: usize = 5113;

/// Total NewSessionTicket size: 4-byte framing + lifetime (4) + flags (1)
/// + opaque ticket.
pub const NEW_SESSION_TICKET_LEN: usize = 4 + 4 + 1 + TICKET_LEN;

/// Marker byte at body offset 32 distinguishing resumption-capable
/// CH/SH bodies from the plain fillers (`0x43` / `0x53`), standing in
/// for the `pre_shared_key` / `early_data` extensions.
const RESUMPTION_MARKER: u8 = 0xA5;
/// CH flag: the client offers 0-RTT early data with its ticket.
const FLAG_EARLY_DATA_OFFERED: u8 = 0x01;
/// SH flag: the server accepted the offered PSK (abbreviated handshake).
const FLAG_PSK_ACCEPTED: u8 = 0x01;
/// SH flag: the server accepted the offered early data.
const FLAG_EARLY_DATA_ACCEPTED: u8 = 0x02;

/// A parsed handshake message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeMessage {
    /// Message type.
    pub ty: HandshakeType,
    /// Opaque body bytes (content is simulated; only sizes and the
    /// embedded metadata below matter).
    pub body: Bytes,
}

impl HandshakeMessage {
    /// Total wire size (4-byte header + body).
    pub fn wire_len(&self) -> usize {
        4 + self.body.len()
    }

    /// Encodes header + body.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.ty.code());
        let len = self.body.len();
        assert!(len < 1 << 24);
        buf.put_u8((len >> 16) as u8);
        buf.put_u8((len >> 8) as u8);
        buf.put_u8(len as u8);
        buf.put_slice(&self.body);
    }

    /// Decodes one message if a complete one is available; returns `None`
    /// when more bytes are needed.
    pub fn decode(buf: &mut impl Buf) -> Result<Option<HandshakeMessage>, TlsError> {
        if buf.remaining() < 4 {
            return Ok(None);
        }
        let chunk = buf.chunk();
        // Peek without consuming in case the body is incomplete.
        let (ty_code, len) = if chunk.len() >= 4 {
            (
                chunk[0],
                ((chunk[1] as usize) << 16) | ((chunk[2] as usize) << 8) | chunk[3] as usize,
            )
        } else {
            let mut head = [0u8; 4];
            let mut peek = buf.chunk();
            let mut copied = 0;
            while copied < 4 && !peek.is_empty() {
                head[copied] = peek[0];
                peek = &peek[1..];
                copied += 1;
            }
            (
                head[0],
                ((head[1] as usize) << 16) | ((head[2] as usize) << 8) | head[3] as usize,
            )
        };
        if buf.remaining() < 4 + len {
            return Ok(None);
        }
        buf.advance(4);
        let body = buf.copy_to_bytes(len);
        Ok(Some(HandshakeMessage {
            ty: HandshakeType::from_code(ty_code)?,
            body,
        }))
    }

    /// Builds a ClientHello of `total_len` bytes carrying a 32-byte random.
    pub fn client_hello(random: [u8; 32], total_len: usize) -> Self {
        assert!(total_len >= 4 + 32, "ClientHello must fit its random");
        let mut body = BytesMut::with_capacity(total_len - 4);
        body.put_slice(&random);
        body.resize(total_len - 4, 0x43); // 'C' filler standing in for extensions
        HandshakeMessage {
            ty: HandshakeType::ClientHello,
            body: body.freeze(),
        }
    }

    /// Builds a resumption ClientHello of `total_len` bytes: the random,
    /// the PSK marker + flags, and the opaque ticket, padded with the
    /// regular extension filler (the PSK extension costs real bytes on
    /// the wire, so the resumption CH is allowed to exceed `total_len`'s
    /// floor only via its own framing).
    pub fn client_hello_resumption(
        random: [u8; 32],
        total_len: usize,
        ticket: &[u8; TICKET_LEN],
        early_data: bool,
    ) -> Self {
        let floor = 4 + 32 + 2 + TICKET_LEN;
        let total_len = total_len.max(floor);
        let mut body = BytesMut::with_capacity(total_len - 4);
        body.put_slice(&random);
        body.put_u8(RESUMPTION_MARKER);
        body.put_u8(if early_data {
            FLAG_EARLY_DATA_OFFERED
        } else {
            0
        });
        body.put_slice(ticket);
        body.resize(total_len - 4, 0x43);
        HandshakeMessage {
            ty: HandshakeType::ClientHello,
            body: body.freeze(),
        }
    }

    /// Parses a ClientHello body's resumption offer: `(ticket,
    /// early_data_offered)`, or `None` for a plain full-handshake CH.
    pub fn resumption_offer(&self) -> Option<([u8; TICKET_LEN], bool)> {
        if self.ty != HandshakeType::ClientHello || self.body.len() < 34 + TICKET_LEN {
            return None;
        }
        if self.body[32] != RESUMPTION_MARKER {
            return None;
        }
        let early = self.body[33] & FLAG_EARLY_DATA_OFFERED != 0;
        let mut ticket = [0u8; TICKET_LEN];
        ticket.copy_from_slice(&self.body[34..34 + TICKET_LEN]);
        Some((ticket, early))
    }

    /// Builds a ServerHello carrying a 32-byte random.
    pub fn server_hello(random: [u8; 32]) -> Self {
        let mut body = BytesMut::with_capacity(SERVER_HELLO_LEN - 4);
        body.put_slice(&random);
        body.resize(SERVER_HELLO_LEN - 4, 0x53); // 'S'
        HandshakeMessage {
            ty: HandshakeType::ServerHello,
            body: body.freeze(),
        }
    }

    /// Builds the ServerHello of an abbreviated (PSK-accepted) handshake,
    /// flagging whether offered early data was accepted.
    pub fn server_hello_resumed(random: [u8; 32], early_data_accepted: bool) -> Self {
        let mut body = BytesMut::with_capacity(SERVER_HELLO_LEN - 4);
        body.put_slice(&random);
        body.put_u8(RESUMPTION_MARKER);
        let mut flags = FLAG_PSK_ACCEPTED;
        if early_data_accepted {
            flags |= FLAG_EARLY_DATA_ACCEPTED;
        }
        body.put_u8(flags);
        body.resize(SERVER_HELLO_LEN - 4, 0x53);
        HandshakeMessage {
            ty: HandshakeType::ServerHello,
            body: body.freeze(),
        }
    }

    /// Parses a ServerHello body's resumption outcome:
    /// `(psk_accepted, early_data_accepted)`; `None` for a plain SH
    /// (which a resuming client reads as "fall back to full handshake").
    pub fn resumption_outcome(&self) -> Option<(bool, bool)> {
        if self.ty != HandshakeType::ServerHello || self.body.len() < 34 {
            return None;
        }
        if self.body[32] != RESUMPTION_MARKER {
            return None;
        }
        let flags = self.body[33];
        Some((
            flags & FLAG_PSK_ACCEPTED != 0,
            flags & FLAG_EARLY_DATA_ACCEPTED != 0,
        ))
    }

    /// Builds a NewSessionTicket carrying the opaque ticket, its
    /// lifetime, and the server's early-data support flag.
    pub fn new_session_ticket(
        lifetime_secs: u32,
        early_data_allowed: bool,
        ticket: &[u8; TICKET_LEN],
    ) -> Self {
        let mut body = BytesMut::with_capacity(NEW_SESSION_TICKET_LEN - 4);
        body.put_u32(lifetime_secs);
        body.put_u8(early_data_allowed as u8);
        body.put_slice(ticket);
        HandshakeMessage {
            ty: HandshakeType::NewSessionTicket,
            body: body.freeze(),
        }
    }

    /// Parses a NewSessionTicket body:
    /// `(lifetime_secs, early_data_allowed, ticket)`.
    pub fn parse_new_session_ticket(&self) -> Option<(u32, bool, [u8; TICKET_LEN])> {
        if self.ty != HandshakeType::NewSessionTicket || self.body.len() < 5 + TICKET_LEN {
            return None;
        }
        let lifetime = u32::from_be_bytes(self.body[..4].try_into().unwrap());
        let early = self.body[4] != 0;
        let mut ticket = [0u8; TICKET_LEN];
        ticket.copy_from_slice(&self.body[5..5 + TICKET_LEN]);
        Some((lifetime, early, ticket))
    }

    /// Builds EncryptedExtensions.
    pub fn encrypted_extensions() -> Self {
        HandshakeMessage {
            ty: HandshakeType::EncryptedExtensions,
            body: Bytes::from(vec![0x45; ENCRYPTED_EXTENSIONS_LEN - 4]),
        }
    }

    /// Builds a Certificate message whose *total* size is `total_len`
    /// (the paper quotes whole-chain sizes, e.g. 1,212 or 5,113 bytes).
    pub fn certificate(total_len: usize) -> Self {
        assert!(total_len > 4);
        HandshakeMessage {
            ty: HandshakeType::Certificate,
            body: Bytes::from(vec![0x30; total_len - 4]), // DER SEQUENCE filler
        }
    }

    /// Builds CertificateVerify.
    pub fn certificate_verify() -> Self {
        HandshakeMessage {
            ty: HandshakeType::CertificateVerify,
            body: Bytes::from(vec![0x56; CERTIFICATE_VERIFY_LEN - 4]),
        }
    }

    /// Builds Finished with the given 32-byte verify-data.
    pub fn finished(verify_data: [u8; 32]) -> Self {
        HandshakeMessage {
            ty: HandshakeType::Finished,
            body: Bytes::copy_from_slice(&verify_data),
        }
    }

    /// Extracts the 32-byte random from a CH/SH body.
    pub fn random(&self) -> Option<[u8; 32]> {
        if self.body.len() < 32 {
            return None;
        }
        let mut r = [0u8; 32];
        r.copy_from_slice(&self.body[..32]);
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: HandshakeMessage) {
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        assert_eq!(buf.len(), m.wire_len());
        let mut slice = buf.freeze();
        let out = HandshakeMessage::decode(&mut slice).unwrap().unwrap();
        assert_eq!(out, m);
        assert_eq!(slice.remaining(), 0);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(HandshakeMessage::client_hello(
            [1; 32],
            DEFAULT_CLIENT_HELLO_LEN,
        ));
        roundtrip(HandshakeMessage::server_hello([2; 32]));
        roundtrip(HandshakeMessage::encrypted_extensions());
        roundtrip(HandshakeMessage::certificate(CERT_SMALL));
        roundtrip(HandshakeMessage::certificate(CERT_LARGE));
        roundtrip(HandshakeMessage::certificate_verify());
        roundtrip(HandshakeMessage::finished([3; 32]));
        roundtrip(HandshakeMessage::client_hello_resumption(
            [4; 32],
            DEFAULT_CLIENT_HELLO_LEN,
            &[0xEE; TICKET_LEN],
            true,
        ));
        roundtrip(HandshakeMessage::server_hello_resumed([5; 32], false));
        roundtrip(HandshakeMessage::new_session_ticket(
            7200,
            true,
            &[0xDD; TICKET_LEN],
        ));
    }

    #[test]
    fn resumption_offer_roundtrip_and_absence() {
        let ticket = [0xAB; TICKET_LEN];
        let ch = HandshakeMessage::client_hello_resumption(
            [9; 32],
            DEFAULT_CLIENT_HELLO_LEN,
            &ticket,
            true,
        );
        assert_eq!(ch.wire_len(), DEFAULT_CLIENT_HELLO_LEN);
        assert_eq!(ch.random(), Some([9; 32]));
        assert_eq!(ch.resumption_offer(), Some((ticket, true)));
        let no_early = HandshakeMessage::client_hello_resumption(
            [9; 32],
            DEFAULT_CLIENT_HELLO_LEN,
            &ticket,
            false,
        );
        assert_eq!(no_early.resumption_offer(), Some((ticket, false)));
        // A plain CH carries no offer (filler byte differs from the marker).
        let plain = HandshakeMessage::client_hello([9; 32], DEFAULT_CLIENT_HELLO_LEN);
        assert_eq!(plain.resumption_offer(), None);
    }

    #[test]
    fn resumption_outcome_flags() {
        let sh = HandshakeMessage::server_hello_resumed([1; 32], true);
        assert_eq!(sh.wire_len(), SERVER_HELLO_LEN);
        assert_eq!(sh.resumption_outcome(), Some((true, true)));
        let no_early = HandshakeMessage::server_hello_resumed([1; 32], false);
        assert_eq!(no_early.resumption_outcome(), Some((true, false)));
        assert_eq!(
            HandshakeMessage::server_hello([1; 32]).resumption_outcome(),
            None
        );
    }

    #[test]
    fn new_session_ticket_parses() {
        let ticket = [0x3C; TICKET_LEN];
        let nst = HandshakeMessage::new_session_ticket(86_400, false, &ticket);
        assert_eq!(nst.wire_len(), NEW_SESSION_TICKET_LEN);
        assert_eq!(
            nst.parse_new_session_ticket(),
            Some((86_400, false, ticket))
        );
        assert_eq!(
            HandshakeMessage::finished([0; 32]).parse_new_session_ticket(),
            None
        );
    }

    #[test]
    fn sizes_match_constants() {
        assert_eq!(
            HandshakeMessage::client_hello([0; 32], DEFAULT_CLIENT_HELLO_LEN).wire_len(),
            DEFAULT_CLIENT_HELLO_LEN
        );
        assert_eq!(
            HandshakeMessage::server_hello([0; 32]).wire_len(),
            SERVER_HELLO_LEN
        );
        assert_eq!(
            HandshakeMessage::certificate(CERT_SMALL).wire_len(),
            CERT_SMALL
        );
        assert_eq!(
            HandshakeMessage::certificate(CERT_LARGE).wire_len(),
            CERT_LARGE
        );
        assert_eq!(
            HandshakeMessage::certificate_verify().wire_len(),
            CERTIFICATE_VERIFY_LEN
        );
        assert_eq!(HandshakeMessage::finished([0; 32]).wire_len(), FINISHED_LEN);
    }

    #[test]
    fn partial_decode_returns_none() {
        let m = HandshakeMessage::certificate(100);
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let mut partial = Bytes::copy_from_slice(&buf[..50]);
        assert_eq!(HandshakeMessage::decode(&mut partial).unwrap(), None);
        // Nothing consumed on partial decode.
        assert_eq!(partial.remaining(), 50);
    }

    #[test]
    fn streaming_decode_across_messages() {
        let mut buf = BytesMut::new();
        HandshakeMessage::server_hello([9; 32]).encode(&mut buf);
        HandshakeMessage::encrypted_extensions().encode(&mut buf);
        let mut stream = buf.freeze();
        let m1 = HandshakeMessage::decode(&mut stream).unwrap().unwrap();
        let m2 = HandshakeMessage::decode(&mut stream).unwrap().unwrap();
        assert_eq!(m1.ty, HandshakeType::ServerHello);
        assert_eq!(m2.ty, HandshakeType::EncryptedExtensions);
        assert_eq!(HandshakeMessage::decode(&mut stream).unwrap(), None);
    }

    #[test]
    fn random_extraction() {
        let m = HandshakeMessage::client_hello([7; 32], 200);
        assert_eq!(m.random(), Some([7; 32]));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut raw = Bytes::copy_from_slice(&[99, 0, 0, 1, 0]);
        assert!(matches!(
            HandshakeMessage::decode(&mut raw),
            Err(TlsError::UnknownMessage(99))
        ));
    }
}
