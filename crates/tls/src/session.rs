//! The TLS handshake state machine (sans-IO).
//!
//! The QUIC connection feeds contiguous crypto-stream bytes per encryption
//! level into [`TlsSession::read_crypto`] and drains flight bytes with
//! [`TlsSession::take_output`]. The server pauses after the ClientHello
//! until [`TlsSession::provide_certificate`] is called — this is the hook
//! the paper's Δt (frontend ↔ certificate store delay) attaches to, and
//! what makes WFC vs IACK observable.

use bytes::{Bytes, BytesMut};

use crate::keys::{application_keys, handshake_keys, Level, LevelKeys};
use crate::messages::{HandshakeMessage, HandshakeType, DEFAULT_CLIENT_HELLO_LEN};
use crate::sha256::Sha256;
use crate::TlsError;

/// Endpoint role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection responder.
    Server,
}

/// Client-side handshake parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total ClientHello size in bytes.
    pub client_hello_len: usize,
    /// 32-byte client random (drawn from the simulation RNG upstream).
    pub random: [u8; 32],
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            client_hello_len: DEFAULT_CLIENT_HELLO_LEN,
            random: [0x11; 32],
        }
    }
}

/// Server-side handshake parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total Certificate message size in bytes (the paper's 1,212 B small
    /// and 5,113 B large chains are in `messages::CERT_SMALL/_LARGE`).
    pub cert_len: usize,
    /// 32-byte server random.
    pub random: [u8; 32],
    /// If true the certificate is already on the frontend (cache hit):
    /// the ServerHello flight is produced immediately on ClientHello.
    pub cert_preprovisioned: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cert_len: crate::messages::CERT_SMALL,
            random: [0x22; 32],
            cert_preprovisioned: false,
        }
    }
}

/// Events surfaced to the QUIC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsEvent {
    /// Keys for a level are now available; install them before processing
    /// further packets at that level.
    KeysReady(Level),
    /// Server only: the ClientHello was parsed but no certificate is
    /// provisioned. Fetch it (after Δt) and call `provide_certificate`.
    NeedCertificate,
    /// The handshake is complete at this endpoint.
    HandshakeComplete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    WaitServerHello,
    WaitEncryptedExtensions,
    WaitCertificate,
    WaitCertificateVerify,
    WaitFinished,
    Complete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    WaitClientHello,
    WaitCertProvision,
    WaitClientFinished,
    Complete,
}

#[derive(Debug)]
enum StateMachine {
    Client(ClientState),
    Server(ServerState),
}

/// A sans-IO TLS 1.3 handshake session.
pub struct TlsSession {
    role: Role,
    state: StateMachine,
    client_cfg: ClientConfig,
    server_cfg: ServerConfig,
    transcript: Sha256,
    /// Pending output bytes per level: Initial, Handshake.
    out_initial: BytesMut,
    out_handshake: BytesMut,
    /// Reassembled-but-unparsed input per level.
    in_initial: BytesMut,
    in_handshake: BytesMut,
    handshake_keys: Option<LevelKeys>,
    application_keys: Option<LevelKeys>,
    complete: bool,
}

impl TlsSession {
    /// Creates a client session. Call [`TlsSession::start`] to queue the
    /// ClientHello.
    pub fn client(cfg: ClientConfig) -> Self {
        TlsSession {
            role: Role::Client,
            state: StateMachine::Client(ClientState::Start),
            client_cfg: cfg,
            server_cfg: ServerConfig::default(),
            transcript: Sha256::new(),
            out_initial: BytesMut::new(),
            out_handshake: BytesMut::new(),
            in_initial: BytesMut::new(),
            in_handshake: BytesMut::new(),
            handshake_keys: None,
            application_keys: None,
            complete: false,
        }
    }

    /// Creates a server session.
    pub fn server(cfg: ServerConfig) -> Self {
        TlsSession {
            role: Role::Server,
            state: StateMachine::Server(ServerState::WaitClientHello),
            client_cfg: ClientConfig::default(),
            server_cfg: cfg,
            transcript: Sha256::new(),
            out_initial: BytesMut::new(),
            out_handshake: BytesMut::new(),
            in_initial: BytesMut::new(),
            in_handshake: BytesMut::new(),
            handshake_keys: None,
            application_keys: None,
            complete: false,
        }
    }

    /// Endpoint role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Queues the ClientHello (client only). Idempotent.
    pub fn start(&mut self) {
        if let StateMachine::Client(state @ ClientState::Start) = &mut self.state {
            let ch = HandshakeMessage::client_hello(
                self.client_cfg.random,
                self.client_cfg.client_hello_len,
            );
            let mut enc = BytesMut::new();
            ch.encode(&mut enc);
            self.transcript.update(&enc);
            self.out_initial.extend_from_slice(&enc);
            *state = ClientState::WaitServerHello;
        }
    }

    /// Re-queues the ClientHello after a Retry packet (RFC 9000 §17.2.5):
    /// the transcript restarts and the CH is resent with the server token
    /// carried at the QUIC layer.
    pub fn reset_for_retry(&mut self) {
        assert_eq!(self.role, Role::Client, "only clients process Retry");
        self.state = StateMachine::Client(ClientState::Start);
        self.transcript = Sha256::new();
        self.out_initial.clear();
        self.out_handshake.clear();
        self.in_initial.clear();
        self.in_handshake.clear();
        self.start();
    }

    /// Feeds contiguous crypto bytes received at `level`.
    pub fn read_crypto(&mut self, level: Level, data: &[u8]) -> Result<Vec<TlsEvent>, TlsError> {
        match level {
            Level::Initial => self.in_initial.extend_from_slice(data),
            Level::Handshake => self.in_handshake.extend_from_slice(data),
            Level::Application => return Err(TlsError::UnexpectedMessage("crypto at 1-RTT")),
        }
        let mut events = Vec::new();
        loop {
            let before = (self.in_initial.len(), self.in_handshake.len());
            self.advance(level, &mut events)?;
            let after = (self.in_initial.len(), self.in_handshake.len());
            if before == after {
                break;
            }
        }
        Ok(events)
    }

    fn advance(&mut self, level: Level, events: &mut Vec<TlsEvent>) -> Result<(), TlsError> {
        let buf = match level {
            Level::Initial => &mut self.in_initial,
            Level::Handshake => &mut self.in_handshake,
            Level::Application => unreachable!(),
        };
        let mut peek = Bytes::copy_from_slice(buf);
        let Some(msg) = HandshakeMessage::decode(&mut peek)? else {
            return Ok(());
        };
        // Consume the parsed bytes from the real buffer.
        let consumed = buf.len() - peek.len();
        let _ = buf.split_to(consumed);

        match (&mut self.state, level) {
            (StateMachine::Client(state), _) => {
                Self::client_handle(
                    state,
                    &msg,
                    level,
                    &mut self.transcript,
                    &mut self.out_handshake,
                    &mut self.handshake_keys,
                    &mut self.application_keys,
                    &mut self.complete,
                    events,
                )?;
            }
            (StateMachine::Server(state), lvl) => {
                Self::server_handle(
                    state,
                    &msg,
                    lvl,
                    &self.server_cfg,
                    &mut self.transcript,
                    &mut self.out_initial,
                    &mut self.out_handshake,
                    &mut self.handshake_keys,
                    &mut self.application_keys,
                    &mut self.complete,
                    events,
                )?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn client_handle(
        state: &mut ClientState,
        msg: &HandshakeMessage,
        level: Level,
        transcript: &mut Sha256,
        out_handshake: &mut BytesMut,
        hs_keys: &mut Option<LevelKeys>,
        app_keys: &mut Option<LevelKeys>,
        complete: &mut bool,
        events: &mut Vec<TlsEvent>,
    ) -> Result<(), TlsError> {
        let expect_err = |got: HandshakeType| {
            Err(TlsError::UnexpectedMessage(match got {
                HandshakeType::ClientHello => "ClientHello at client",
                _ => "out-of-order handshake message",
            }))
        };
        let mut enc = BytesMut::new();
        msg.encode(&mut enc);
        match (*state, msg.ty, level) {
            (ClientState::WaitServerHello, HandshakeType::ServerHello, Level::Initial) => {
                transcript.update(&enc);
                let th = transcript.clone().finalize();
                *hs_keys = Some(handshake_keys(&th));
                events.push(TlsEvent::KeysReady(Level::Handshake));
                *state = ClientState::WaitEncryptedExtensions;
            }
            (
                ClientState::WaitEncryptedExtensions,
                HandshakeType::EncryptedExtensions,
                Level::Handshake,
            ) => {
                transcript.update(&enc);
                *state = ClientState::WaitCertificate;
            }
            (ClientState::WaitCertificate, HandshakeType::Certificate, Level::Handshake) => {
                transcript.update(&enc);
                *state = ClientState::WaitCertificateVerify;
            }
            (
                ClientState::WaitCertificateVerify,
                HandshakeType::CertificateVerify,
                Level::Handshake,
            ) => {
                transcript.update(&enc);
                *state = ClientState::WaitFinished;
            }
            (ClientState::WaitFinished, HandshakeType::Finished, Level::Handshake) => {
                transcript.update(&enc);
                let th = transcript.clone().finalize();
                *app_keys = Some(application_keys(&th));
                events.push(TlsEvent::KeysReady(Level::Application));
                // Client Finished: verify-data = transcript hash.
                let fin = HandshakeMessage::finished(th);
                let mut fin_enc = BytesMut::new();
                fin.encode(&mut fin_enc);
                transcript.update(&fin_enc);
                out_handshake.extend_from_slice(&fin_enc);
                *state = ClientState::Complete;
                *complete = true;
                events.push(TlsEvent::HandshakeComplete);
            }
            (_, got, _) => return expect_err(got),
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn server_handle(
        state: &mut ServerState,
        msg: &HandshakeMessage,
        level: Level,
        cfg: &ServerConfig,
        transcript: &mut Sha256,
        out_initial: &mut BytesMut,
        out_handshake: &mut BytesMut,
        hs_keys: &mut Option<LevelKeys>,
        app_keys: &mut Option<LevelKeys>,
        complete: &mut bool,
        events: &mut Vec<TlsEvent>,
    ) -> Result<(), TlsError> {
        let mut enc = BytesMut::new();
        msg.encode(&mut enc);
        match (*state, msg.ty, level) {
            (ServerState::WaitClientHello, HandshakeType::ClientHello, Level::Initial) => {
                transcript.update(&enc);
                if cfg.cert_preprovisioned {
                    Self::emit_server_flight(
                        cfg,
                        transcript,
                        out_initial,
                        out_handshake,
                        hs_keys,
                        app_keys,
                        events,
                    );
                    *state = ServerState::WaitClientFinished;
                } else {
                    events.push(TlsEvent::NeedCertificate);
                    *state = ServerState::WaitCertProvision;
                }
            }
            (ServerState::WaitClientFinished, HandshakeType::Finished, Level::Handshake) => {
                // Verify-data check: must equal our transcript hash at the
                // point the client computed it (before its own Finished).
                *state = ServerState::Complete;
                *complete = true;
                events.push(TlsEvent::HandshakeComplete);
            }
            (_, _, _) => return Err(TlsError::UnexpectedMessage("out-of-order at server")),
        }
        Ok(())
    }

    fn emit_server_flight(
        cfg: &ServerConfig,
        transcript: &mut Sha256,
        out_initial: &mut BytesMut,
        out_handshake: &mut BytesMut,
        hs_keys: &mut Option<LevelKeys>,
        app_keys: &mut Option<LevelKeys>,
        events: &mut Vec<TlsEvent>,
    ) {
        // ServerHello at Initial level.
        let sh = HandshakeMessage::server_hello(cfg.random);
        let mut enc = BytesMut::new();
        sh.encode(&mut enc);
        transcript.update(&enc);
        out_initial.extend_from_slice(&enc);
        let th = transcript.clone().finalize();
        *hs_keys = Some(handshake_keys(&th));
        events.push(TlsEvent::KeysReady(Level::Handshake));

        // EE, CERT, CV, FIN at Handshake level.
        for m in [
            HandshakeMessage::encrypted_extensions(),
            HandshakeMessage::certificate(cfg.cert_len),
            HandshakeMessage::certificate_verify(),
        ] {
            let mut e = BytesMut::new();
            m.encode(&mut e);
            transcript.update(&e);
            out_handshake.extend_from_slice(&e);
        }
        let th_fin = transcript.clone().finalize();
        let fin = HandshakeMessage::finished(th_fin);
        let mut e = BytesMut::new();
        fin.encode(&mut e);
        transcript.update(&e);
        out_handshake.extend_from_slice(&e);
        // Server can send 1-RTT data once its Finished is queued.
        let th_app = transcript.clone().finalize();
        *app_keys = Some(application_keys(&th_app));
        events.push(TlsEvent::KeysReady(Level::Application));
    }

    /// Server only: the certificate arrived from the store. Produces the
    /// ServerHello flight. Returns the resulting events.
    pub fn provide_certificate(&mut self) -> Vec<TlsEvent> {
        let mut events = Vec::new();
        if let StateMachine::Server(state @ ServerState::WaitCertProvision) = &mut self.state {
            Self::emit_server_flight(
                &self.server_cfg,
                &mut self.transcript,
                &mut self.out_initial,
                &mut self.out_handshake,
                &mut self.handshake_keys,
                &mut self.application_keys,
                &mut events,
            );
            *state = ServerState::WaitClientFinished;
        }
        events
    }

    /// Drains pending outgoing crypto bytes for `level`.
    pub fn take_output(&mut self, level: Level) -> Option<Bytes> {
        let buf = match level {
            Level::Initial => &mut self.out_initial,
            Level::Handshake => &mut self.out_handshake,
            Level::Application => return None,
        };
        if buf.is_empty() {
            None
        } else {
            Some(buf.split().freeze())
        }
    }

    /// Peeks at the number of pending output bytes for `level`.
    pub fn pending_output(&self, level: Level) -> usize {
        match level {
            Level::Initial => self.out_initial.len(),
            Level::Handshake => self.out_handshake.len(),
            Level::Application => 0,
        }
    }

    /// Keys for a level once available.
    pub fn keys(&self, level: Level) -> Option<&LevelKeys> {
        match level {
            Level::Initial => None, // derived from DCID by the QUIC layer
            Level::Handshake => self.handshake_keys.as_ref(),
            Level::Application => self.application_keys.as_ref(),
        }
    }

    /// Whether the handshake is complete at this endpoint.
    pub fn is_complete(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{CERT_LARGE, CERT_SMALL};

    /// Runs a full in-memory handshake, shuttling crypto bytes directly.
    fn run_handshake(cert_len: usize, preprovisioned: bool) -> (TlsSession, TlsSession) {
        let mut client = TlsSession::client(ClientConfig::default());
        let mut server = TlsSession::server(ServerConfig {
            cert_len,
            cert_preprovisioned: preprovisioned,
            ..ServerConfig::default()
        });
        client.start();
        let ch = client.take_output(Level::Initial).unwrap();
        let ev = server.read_crypto(Level::Initial, &ch).unwrap();
        if !preprovisioned {
            assert_eq!(ev, vec![TlsEvent::NeedCertificate]);
            let ev2 = server.provide_certificate();
            assert!(ev2.contains(&TlsEvent::KeysReady(Level::Handshake)));
            assert!(ev2.contains(&TlsEvent::KeysReady(Level::Application)));
        } else {
            assert!(ev.contains(&TlsEvent::KeysReady(Level::Handshake)));
        }
        let sh = server.take_output(Level::Initial).unwrap();
        let flight = server.take_output(Level::Handshake).unwrap();
        let ev = client.read_crypto(Level::Initial, &sh).unwrap();
        assert_eq!(ev, vec![TlsEvent::KeysReady(Level::Handshake)]);
        let ev = client.read_crypto(Level::Handshake, &flight).unwrap();
        assert!(ev.contains(&TlsEvent::KeysReady(Level::Application)));
        assert!(ev.contains(&TlsEvent::HandshakeComplete));
        let client_fin = client.take_output(Level::Handshake).unwrap();
        let ev = server.read_crypto(Level::Handshake, &client_fin).unwrap();
        assert!(ev.contains(&TlsEvent::HandshakeComplete));
        (client, server)
    }

    #[test]
    fn full_handshake_small_cert() {
        let (client, server) = run_handshake(CERT_SMALL, false);
        assert!(client.is_complete());
        assert!(server.is_complete());
    }

    #[test]
    fn full_handshake_large_cert() {
        let (client, server) = run_handshake(CERT_LARGE, false);
        assert!(client.is_complete());
        assert!(server.is_complete());
    }

    #[test]
    fn preprovisioned_cert_skips_need_certificate() {
        let (client, server) = run_handshake(CERT_SMALL, true);
        assert!(client.is_complete());
        assert!(server.is_complete());
    }

    #[test]
    fn both_sides_derive_identical_keys() {
        let (client, server) = run_handshake(CERT_SMALL, false);
        assert_eq!(client.keys(Level::Handshake), server.keys(Level::Handshake));
        assert_eq!(
            client.keys(Level::Application),
            server.keys(Level::Application)
        );
    }

    #[test]
    fn server_flight_size_scales_with_cert() {
        let mut client = TlsSession::client(ClientConfig::default());
        client.start();
        let ch = client.take_output(Level::Initial).unwrap();

        let mut small = TlsSession::server(ServerConfig {
            cert_len: CERT_SMALL,
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        small.read_crypto(Level::Initial, &ch).unwrap();
        let small_len = small.pending_output(Level::Handshake);

        let mut large = TlsSession::server(ServerConfig {
            cert_len: CERT_LARGE,
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        large.read_crypto(Level::Initial, &ch).unwrap();
        let large_len = large.pending_output(Level::Handshake);

        assert_eq!(large_len - small_len, CERT_LARGE - CERT_SMALL);
    }

    #[test]
    fn fragmented_delivery_still_completes() {
        let mut client = TlsSession::client(ClientConfig::default());
        let mut server = TlsSession::server(ServerConfig {
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        client.start();
        let ch = client.take_output(Level::Initial).unwrap();
        // Deliver CH one byte at a time.
        for b in ch.iter() {
            server.read_crypto(Level::Initial, &[*b]).unwrap();
        }
        let sh = server.take_output(Level::Initial).unwrap();
        let flight = server.take_output(Level::Handshake).unwrap();
        client.read_crypto(Level::Initial, &sh).unwrap();
        // Deliver the handshake flight in 100-byte chunks.
        for chunk in flight.chunks(100) {
            client.read_crypto(Level::Handshake, chunk).unwrap();
        }
        assert!(client.is_complete());
    }

    #[test]
    fn out_of_order_message_rejected() {
        let mut client = TlsSession::client(ClientConfig::default());
        client.start();
        // Server Finished before ServerHello is a protocol violation.
        let fin = HandshakeMessage::finished([0; 32]);
        let mut enc = BytesMut::new();
        fin.encode(&mut enc);
        assert!(client.read_crypto(Level::Initial, &enc).is_err());
    }

    #[test]
    fn retry_resets_and_requeues_client_hello() {
        let mut client = TlsSession::client(ClientConfig::default());
        client.start();
        let ch1 = client.take_output(Level::Initial).unwrap();
        client.reset_for_retry();
        let ch2 = client.take_output(Level::Initial).unwrap();
        assert_eq!(ch1, ch2);
    }

    #[test]
    fn provide_certificate_is_noop_before_client_hello() {
        let mut server = TlsSession::server(ServerConfig::default());
        assert!(server.provide_certificate().is_empty());
        assert_eq!(server.pending_output(Level::Initial), 0);
    }
}
