//! The TLS handshake state machine (sans-IO).
//!
//! The QUIC connection feeds contiguous crypto-stream bytes per encryption
//! level into [`TlsSession::read_crypto`] and drains flight bytes with
//! [`TlsSession::take_output`]. The server pauses after the ClientHello
//! until [`TlsSession::provide_certificate`] is called — this is the hook
//! the paper's Δt (frontend ↔ certificate store delay) attaches to, and
//! what makes WFC vs IACK observable.
//!
//! Three handshake classes run through this machine:
//! * **Full** — the original CH → SH/EE/CERT/CV/FIN → FIN exchange;
//! * **Resumed** — the CH offers a session ticket and the server answers
//!   with an abbreviated SH/EE/FIN flight: no certificate, no store
//!   round trip, so the WFC/IACK dichotomy collapses;
//! * **0-RTT** — a resumed handshake whose client additionally derives
//!   early-data keys from the ticket secret before the first flight.
//!
//! After any completed handshake a ticket-issuing server queues a
//! NewSessionTicket at the Application level (a 1-RTT CRYPTO frame).

use bytes::{Bytes, BytesMut};

use crate::keys::{
    application_keys, early_keys, handshake_keys, resumption_secret, Level, LevelKeys,
};
use crate::messages::{HandshakeMessage, HandshakeType, DEFAULT_CLIENT_HELLO_LEN};
use crate::resumption::{mint_ticket, open_ticket, ServerResumption, SessionTicket};
use crate::sha256::Sha256;
use crate::TlsError;

/// Endpoint role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection responder.
    Server,
}

/// Client-side handshake parameters.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Total ClientHello size in bytes.
    pub client_hello_len: usize,
    /// 32-byte client random (drawn from the simulation RNG upstream).
    pub random: [u8; 32],
    /// Session ticket to offer for an abbreviated handshake, if any.
    pub ticket: Option<SessionTicket>,
    /// Offer 0-RTT early data along with the ticket (requires `ticket`).
    pub early_data: bool,
}

impl ClientConfig {
    /// The full-handshake configuration (no ticket, no early data).
    pub fn full() -> Self {
        ClientConfig {
            client_hello_len: DEFAULT_CLIENT_HELLO_LEN,
            random: [0x11; 32],
            ticket: None,
            early_data: false,
        }
    }
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig::full()
    }
}

/// Server-side handshake parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total Certificate message size in bytes (the paper's 1,212 B small
    /// and 5,113 B large chains are in `messages::CERT_SMALL/_LARGE`).
    pub cert_len: usize,
    /// 32-byte server random.
    pub random: [u8; 32],
    /// If true the certificate is already on the frontend (cache hit):
    /// the ServerHello flight is produced immediately on ClientHello.
    pub cert_preprovisioned: bool,
    /// Resumption policy: ticket issuance, PSK acceptance, 0-RTT.
    pub resumption: ServerResumption,
    /// Key minting/validating stateless session tickets.
    pub ticket_key: u64,
    /// Additional keys accepted when validating offered tickets (a
    /// rotating server's overlap window, newest first). `ticket_key` is
    /// always tried first; an empty list is the legacy single-key server.
    pub accept_ticket_keys: Vec<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cert_len: crate::messages::CERT_SMALL,
            random: [0x22; 32],
            cert_preprovisioned: false,
            resumption: ServerResumption::disabled(),
            ticket_key: 0x7E11_C3E7,
            accept_ticket_keys: Vec::new(),
        }
    }
}

/// Events surfaced to the QUIC layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsEvent {
    /// Keys for a level are now available; install them before processing
    /// further packets at that level.
    KeysReady(Level),
    /// Server only: the ClientHello was parsed but no certificate is
    /// provisioned. Fetch it (after Δt) and call `provide_certificate`.
    NeedCertificate,
    /// The handshake is complete at this endpoint.
    HandshakeComplete,
    /// The offered session ticket was accepted: this handshake is
    /// abbreviated (no certificate flight).
    ResumptionAccepted,
    /// Offered 0-RTT early data was accepted; early keys are live end to
    /// end (server: install them to decrypt 0-RTT packets).
    EarlyDataAccepted,
    /// Offered 0-RTT early data was rejected (or the PSK itself was):
    /// anything sent in 0-RTT packets must be retransmitted as 1-RTT.
    EarlyDataRejected,
    /// Client only: a NewSessionTicket arrived; cache it for resumption.
    TicketIssued(SessionTicket),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    WaitServerHello,
    WaitEncryptedExtensions,
    WaitCertificate,
    WaitCertificateVerify,
    WaitFinished,
    Complete,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    WaitClientHello,
    WaitCertProvision,
    WaitClientFinished,
    Complete,
}

#[derive(Debug, Clone, Copy)]
enum StateMachine {
    Client(ClientState),
    Server(ServerState),
}

/// A sans-IO TLS 1.3 handshake session.
pub struct TlsSession {
    role: Role,
    state: StateMachine,
    client_cfg: ClientConfig,
    server_cfg: ServerConfig,
    transcript: Sha256,
    /// Pending output bytes per level: Initial, Handshake, Application.
    out_initial: BytesMut,
    out_handshake: BytesMut,
    out_app: BytesMut,
    /// Reassembled-but-unparsed input per level.
    in_initial: BytesMut,
    in_handshake: BytesMut,
    in_app: BytesMut,
    handshake_keys: Option<LevelKeys>,
    application_keys: Option<LevelKeys>,
    /// 0-RTT early-data keys (client: from the offered ticket; server:
    /// from the validated ticket when early data is accepted).
    early: Option<LevelKeys>,
    complete: bool,
    /// This handshake runs (client: was accepted as) the abbreviated
    /// PSK path.
    resumed: bool,
    /// Whether this side offered early data with its ticket (client).
    offered_early: bool,
    /// Outcome of an early-data offer, once known.
    early_data_accepted: Option<bool>,
    /// Resumption secret derived at handshake completion (pairs an
    /// incoming NewSessionTicket with the client's own transcript).
    res_secret: Option<[u8; 32]>,
}

impl TlsSession {
    /// Creates a client session. Call [`TlsSession::start`] to queue the
    /// ClientHello.
    pub fn client(cfg: ClientConfig) -> Self {
        TlsSession {
            role: Role::Client,
            state: StateMachine::Client(ClientState::Start),
            client_cfg: cfg,
            server_cfg: ServerConfig::default(),
            ..Self::blank(Role::Client)
        }
    }

    /// Creates a server session.
    pub fn server(cfg: ServerConfig) -> Self {
        TlsSession {
            role: Role::Server,
            state: StateMachine::Server(ServerState::WaitClientHello),
            client_cfg: ClientConfig::full(),
            server_cfg: cfg,
            ..Self::blank(Role::Server)
        }
    }

    fn blank(role: Role) -> Self {
        TlsSession {
            role,
            state: StateMachine::Server(ServerState::WaitClientHello),
            client_cfg: ClientConfig::full(),
            server_cfg: ServerConfig::default(),
            transcript: Sha256::new(),
            out_initial: BytesMut::new(),
            out_handshake: BytesMut::new(),
            out_app: BytesMut::new(),
            in_initial: BytesMut::new(),
            in_handshake: BytesMut::new(),
            in_app: BytesMut::new(),
            handshake_keys: None,
            application_keys: None,
            early: None,
            complete: false,
            resumed: false,
            offered_early: false,
            early_data_accepted: None,
            res_secret: None,
        }
    }

    /// Endpoint role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Queues the ClientHello (client only). Idempotent. A configured
    /// session ticket turns the CH into a resumption offer; with
    /// `early_data` the 0-RTT keys become available immediately.
    pub fn start(&mut self) {
        if let StateMachine::Client(state @ ClientState::Start) = &mut self.state {
            let ch = match &self.client_cfg.ticket {
                Some(ticket) => {
                    // RFC 8446 §4.2.10: early data may only be offered
                    // under a ticket whose issuer advertised support.
                    let offer_early = self.client_cfg.early_data && ticket.early_data_allowed;
                    if offer_early {
                        self.offered_early = true;
                        self.early = Some(early_keys(&ticket.secret));
                    }
                    HandshakeMessage::client_hello_resumption(
                        self.client_cfg.random,
                        self.client_cfg.client_hello_len,
                        &ticket.ticket,
                        offer_early,
                    )
                }
                None => HandshakeMessage::client_hello(
                    self.client_cfg.random,
                    self.client_cfg.client_hello_len,
                ),
            };
            let mut enc = BytesMut::new();
            ch.encode(&mut enc);
            self.transcript.update(&enc);
            self.out_initial.extend_from_slice(&enc);
            *state = ClientState::WaitServerHello;
        }
    }

    /// Re-queues the ClientHello after a Retry packet (RFC 9000 §17.2.5):
    /// the transcript restarts and the CH is resent with the server token
    /// carried at the QUIC layer.
    pub fn reset_for_retry(&mut self) {
        assert_eq!(self.role, Role::Client, "only clients process Retry");
        self.state = StateMachine::Client(ClientState::Start);
        self.transcript = Sha256::new();
        self.out_initial.clear();
        self.out_handshake.clear();
        self.out_app.clear();
        self.in_initial.clear();
        self.in_handshake.clear();
        self.in_app.clear();
        self.offered_early = false;
        self.early = None;
        self.start();
    }

    /// Feeds contiguous crypto bytes received at `level`.
    pub fn read_crypto(&mut self, level: Level, data: &[u8]) -> Result<Vec<TlsEvent>, TlsError> {
        match level {
            Level::Initial => self.in_initial.extend_from_slice(data),
            Level::Handshake => self.in_handshake.extend_from_slice(data),
            Level::Application => {
                // Post-handshake messages (NewSessionTicket) flow
                // server → client only.
                if self.role == Role::Server {
                    return Err(TlsError::UnexpectedMessage("crypto at 1-RTT to server"));
                }
                self.in_app.extend_from_slice(data);
            }
        }
        let mut events = Vec::new();
        loop {
            let before = (
                self.in_initial.len(),
                self.in_handshake.len(),
                self.in_app.len(),
            );
            self.advance(level, &mut events)?;
            let after = (
                self.in_initial.len(),
                self.in_handshake.len(),
                self.in_app.len(),
            );
            if before == after {
                break;
            }
        }
        Ok(events)
    }

    fn advance(&mut self, level: Level, events: &mut Vec<TlsEvent>) -> Result<(), TlsError> {
        let buf = match level {
            Level::Initial => &mut self.in_initial,
            Level::Handshake => &mut self.in_handshake,
            Level::Application => &mut self.in_app,
        };
        let mut peek = Bytes::copy_from_slice(buf);
        let Some(msg) = HandshakeMessage::decode(&mut peek)? else {
            return Ok(());
        };
        // Consume the parsed bytes from the real buffer.
        let consumed = buf.len() - peek.len();
        let _ = buf.split_to(consumed);

        match self.state {
            StateMachine::Client(state) => {
                let next = self.client_handle(state, &msg, level, events)?;
                self.state = StateMachine::Client(next);
            }
            StateMachine::Server(state) => {
                let next = self.server_handle(state, &msg, level, events)?;
                self.state = StateMachine::Server(next);
            }
        }
        Ok(())
    }

    fn client_handle(
        &mut self,
        state: ClientState,
        msg: &HandshakeMessage,
        level: Level,
        events: &mut Vec<TlsEvent>,
    ) -> Result<ClientState, TlsError> {
        let mut enc = BytesMut::new();
        msg.encode(&mut enc);
        Ok(match (state, msg.ty, level) {
            (ClientState::WaitServerHello, HandshakeType::ServerHello, Level::Initial) => {
                self.transcript.update(&enc);
                let th = self.transcript.clone().finalize();
                self.handshake_keys = Some(handshake_keys(&th));
                events.push(TlsEvent::KeysReady(Level::Handshake));
                if self.client_cfg.ticket.is_some() {
                    match msg.resumption_outcome() {
                        Some((true, early_accepted)) => {
                            self.resumed = true;
                            events.push(TlsEvent::ResumptionAccepted);
                            if self.offered_early {
                                self.early_data_accepted = Some(early_accepted);
                                if early_accepted {
                                    events.push(TlsEvent::EarlyDataAccepted);
                                } else {
                                    self.early = None;
                                    events.push(TlsEvent::EarlyDataRejected);
                                }
                            }
                        }
                        _ => {
                            // PSK rejected (or a legacy SH): full handshake
                            // fallback; early data dies with the PSK.
                            if self.offered_early {
                                self.early_data_accepted = Some(false);
                                self.early = None;
                                events.push(TlsEvent::EarlyDataRejected);
                            }
                        }
                    }
                }
                ClientState::WaitEncryptedExtensions
            }
            (
                ClientState::WaitEncryptedExtensions,
                HandshakeType::EncryptedExtensions,
                Level::Handshake,
            ) => {
                self.transcript.update(&enc);
                if self.resumed {
                    // Abbreviated flight: the server Finished comes next.
                    ClientState::WaitFinished
                } else {
                    ClientState::WaitCertificate
                }
            }
            (ClientState::WaitCertificate, HandshakeType::Certificate, Level::Handshake) => {
                self.transcript.update(&enc);
                ClientState::WaitCertificateVerify
            }
            (
                ClientState::WaitCertificateVerify,
                HandshakeType::CertificateVerify,
                Level::Handshake,
            ) => {
                self.transcript.update(&enc);
                ClientState::WaitFinished
            }
            (ClientState::WaitFinished, HandshakeType::Finished, Level::Handshake) => {
                self.transcript.update(&enc);
                let th = self.transcript.clone().finalize();
                self.application_keys = Some(application_keys(&th));
                events.push(TlsEvent::KeysReady(Level::Application));
                // Client Finished: verify-data = transcript hash.
                let fin = HandshakeMessage::finished(th);
                let mut fin_enc = BytesMut::new();
                fin.encode(&mut fin_enc);
                self.transcript.update(&fin_enc);
                self.out_handshake.extend_from_slice(&fin_enc);
                // The resumption secret covers the client Finished too.
                let th_res = self.transcript.clone().finalize();
                self.res_secret = Some(resumption_secret(&th_res));
                self.complete = true;
                events.push(TlsEvent::HandshakeComplete);
                ClientState::Complete
            }
            (ClientState::Complete, HandshakeType::NewSessionTicket, Level::Application) => {
                let (lifetime, early_allowed, ticket) = msg
                    .parse_new_session_ticket()
                    .ok_or(TlsError::UnexpectedMessage("malformed NewSessionTicket"))?;
                let secret = self
                    .res_secret
                    .expect("complete handshake has a resumption secret");
                events.push(TlsEvent::TicketIssued(SessionTicket {
                    ticket,
                    secret,
                    lifetime_secs: lifetime,
                    early_data_allowed: early_allowed,
                }));
                ClientState::Complete
            }
            (_, got, _) => {
                return Err(TlsError::UnexpectedMessage(match got {
                    HandshakeType::ClientHello => "ClientHello at client",
                    _ => "out-of-order handshake message",
                }))
            }
        })
    }

    fn server_handle(
        &mut self,
        state: ServerState,
        msg: &HandshakeMessage,
        level: Level,
        events: &mut Vec<TlsEvent>,
    ) -> Result<ServerState, TlsError> {
        let mut enc = BytesMut::new();
        msg.encode(&mut enc);
        Ok(match (state, msg.ty, level) {
            (ServerState::WaitClientHello, HandshakeType::ClientHello, Level::Initial) => {
                self.transcript.update(&enc);
                let offer = msg.resumption_offer();
                let secret = offer.as_ref().and_then(|(ticket, _)| {
                    self.server_cfg
                        .resumption
                        .accept_resumption
                        .then(|| {
                            // The minting key first, then the rotation
                            // overlap window; a ticket sealed under a
                            // retired key opens nowhere and falls back to
                            // the full handshake below.
                            open_ticket(self.server_cfg.ticket_key, ticket).or_else(|| {
                                self.server_cfg
                                    .accept_ticket_keys
                                    .iter()
                                    .find_map(|key| open_ticket(*key, ticket))
                            })
                        })
                        .flatten()
                });
                if let Some(secret) = secret {
                    // Abbreviated handshake: no certificate, no Δt.
                    self.resumed = true;
                    events.push(TlsEvent::ResumptionAccepted);
                    let early_offered = offer.map(|(_, e)| e).unwrap_or(false);
                    let mut early_accepted = false;
                    if early_offered {
                        early_accepted = self.server_cfg.resumption.accept_early_data;
                        self.early_data_accepted = Some(early_accepted);
                        if early_accepted {
                            self.early = Some(early_keys(&secret));
                            events.push(TlsEvent::EarlyDataAccepted);
                        } else {
                            events.push(TlsEvent::EarlyDataRejected);
                        }
                    }
                    self.emit_resumed_flight(early_accepted, events);
                    ServerState::WaitClientFinished
                } else {
                    // Full handshake (offer absent or rejected). A
                    // rejected PSK kills its early-data offer with it —
                    // record that symmetrically with the client side.
                    if let Some((_, true)) = offer {
                        self.early_data_accepted = Some(false);
                        events.push(TlsEvent::EarlyDataRejected);
                    }
                    if self.server_cfg.cert_preprovisioned {
                        self.emit_server_flight(events);
                        ServerState::WaitClientFinished
                    } else {
                        events.push(TlsEvent::NeedCertificate);
                        ServerState::WaitCertProvision
                    }
                }
            }
            (ServerState::WaitClientFinished, HandshakeType::Finished, Level::Handshake) => {
                // Verify-data check: must equal our transcript hash at the
                // point the client computed it (before its own Finished).
                self.transcript.update(&enc);
                let th_res = self.transcript.clone().finalize();
                let secret = resumption_secret(&th_res);
                self.res_secret = Some(secret);
                if self.server_cfg.resumption.issue_tickets {
                    let ticket = mint_ticket(self.server_cfg.ticket_key, &secret);
                    let nst = HandshakeMessage::new_session_ticket(
                        self.server_cfg.resumption.ticket_lifetime_secs,
                        self.server_cfg.resumption.advertise_early_data,
                        &ticket,
                    );
                    let mut nst_enc = BytesMut::new();
                    nst.encode(&mut nst_enc);
                    self.out_app.extend_from_slice(&nst_enc);
                }
                self.complete = true;
                events.push(TlsEvent::HandshakeComplete);
                ServerState::Complete
            }
            (_, _, _) => return Err(TlsError::UnexpectedMessage("out-of-order at server")),
        })
    }

    /// Emits SH + EE + (CERT + CV for full handshakes) + FIN, deriving
    /// handshake and application keys along the way.
    fn flight_core(&mut self, sh: HandshakeMessage, with_cert: bool, events: &mut Vec<TlsEvent>) {
        // ServerHello at Initial level.
        let mut enc = BytesMut::new();
        sh.encode(&mut enc);
        self.transcript.update(&enc);
        self.out_initial.extend_from_slice(&enc);
        let th = self.transcript.clone().finalize();
        self.handshake_keys = Some(handshake_keys(&th));
        events.push(TlsEvent::KeysReady(Level::Handshake));

        // EE (+ CERT, CV) and FIN at Handshake level.
        let mut middle = vec![HandshakeMessage::encrypted_extensions()];
        if with_cert {
            middle.push(HandshakeMessage::certificate(self.server_cfg.cert_len));
            middle.push(HandshakeMessage::certificate_verify());
        }
        for m in middle {
            let mut e = BytesMut::new();
            m.encode(&mut e);
            self.transcript.update(&e);
            self.out_handshake.extend_from_slice(&e);
        }
        let th_fin = self.transcript.clone().finalize();
        let fin = HandshakeMessage::finished(th_fin);
        let mut e = BytesMut::new();
        fin.encode(&mut e);
        self.transcript.update(&e);
        self.out_handshake.extend_from_slice(&e);
        // Server can send 1-RTT data once its Finished is queued.
        let th_app = self.transcript.clone().finalize();
        self.application_keys = Some(application_keys(&th_app));
        events.push(TlsEvent::KeysReady(Level::Application));
    }

    fn emit_server_flight(&mut self, events: &mut Vec<TlsEvent>) {
        let sh = HandshakeMessage::server_hello(self.server_cfg.random);
        self.flight_core(sh, true, events);
    }

    fn emit_resumed_flight(&mut self, early_accepted: bool, events: &mut Vec<TlsEvent>) {
        let sh = HandshakeMessage::server_hello_resumed(self.server_cfg.random, early_accepted);
        self.flight_core(sh, false, events);
    }

    /// Server only: the certificate arrived from the store. Produces the
    /// ServerHello flight. Returns the resulting events.
    pub fn provide_certificate(&mut self) -> Vec<TlsEvent> {
        let mut events = Vec::new();
        if let StateMachine::Server(ServerState::WaitCertProvision) = self.state {
            self.emit_server_flight(&mut events);
            self.state = StateMachine::Server(ServerState::WaitClientFinished);
        }
        events
    }

    /// Drains pending outgoing crypto bytes for `level`.
    pub fn take_output(&mut self, level: Level) -> Option<Bytes> {
        let buf = match level {
            Level::Initial => &mut self.out_initial,
            Level::Handshake => &mut self.out_handshake,
            Level::Application => &mut self.out_app,
        };
        if buf.is_empty() {
            None
        } else {
            Some(buf.split().freeze())
        }
    }

    /// Peeks at the number of pending output bytes for `level`.
    pub fn pending_output(&self, level: Level) -> usize {
        match level {
            Level::Initial => self.out_initial.len(),
            Level::Handshake => self.out_handshake.len(),
            Level::Application => self.out_app.len(),
        }
    }

    /// Keys for a level once available.
    pub fn keys(&self, level: Level) -> Option<&LevelKeys> {
        match level {
            Level::Initial => None, // derived from DCID by the QUIC layer
            Level::Handshake => self.handshake_keys.as_ref(),
            Level::Application => self.application_keys.as_ref(),
        }
    }

    /// 0-RTT early-data keys, when available (client: ticket offered
    /// with early data; server: valid ticket + early data accepted).
    pub fn early_keys(&self) -> Option<&LevelKeys> {
        self.early.as_ref()
    }

    /// Whether this handshake ran the abbreviated (PSK) path.
    pub fn is_resumed(&self) -> bool {
        self.resumed
    }

    /// Outcome of the 0-RTT offer: `None` until decided (or when early
    /// data was never offered).
    pub fn early_data_accepted(&self) -> Option<bool> {
        self.early_data_accepted
    }

    /// Whether the handshake is complete at this endpoint.
    pub fn is_complete(&self) -> bool {
        self.complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{CERT_LARGE, CERT_SMALL, NEW_SESSION_TICKET_LEN};

    /// Shuttles crypto bytes between two sessions until quiescent,
    /// collecting both sides' events.
    fn pump(client: &mut TlsSession, server: &mut TlsSession) -> (Vec<TlsEvent>, Vec<TlsEvent>) {
        let mut cev = Vec::new();
        let mut sev = Vec::new();
        loop {
            let mut progress = false;
            for lvl in [Level::Initial, Level::Handshake, Level::Application] {
                if let Some(out) = client.take_output(lvl) {
                    sev.extend(server.read_crypto(lvl, &out).unwrap());
                    progress = true;
                }
                if let Some(out) = server.take_output(lvl) {
                    cev.extend(client.read_crypto(lvl, &out).unwrap());
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        (cev, sev)
    }

    /// Runs a full in-memory handshake, shuttling crypto bytes directly.
    fn run_handshake(cert_len: usize, preprovisioned: bool) -> (TlsSession, TlsSession) {
        let mut client = TlsSession::client(ClientConfig::full());
        let mut server = TlsSession::server(ServerConfig {
            cert_len,
            cert_preprovisioned: preprovisioned,
            ..ServerConfig::default()
        });
        client.start();
        let ch = client.take_output(Level::Initial).unwrap();
        let ev = server.read_crypto(Level::Initial, &ch).unwrap();
        if !preprovisioned {
            assert_eq!(ev, vec![TlsEvent::NeedCertificate]);
            let ev2 = server.provide_certificate();
            assert!(ev2.contains(&TlsEvent::KeysReady(Level::Handshake)));
            assert!(ev2.contains(&TlsEvent::KeysReady(Level::Application)));
        } else {
            assert!(ev.contains(&TlsEvent::KeysReady(Level::Handshake)));
        }
        let sh = server.take_output(Level::Initial).unwrap();
        let flight = server.take_output(Level::Handshake).unwrap();
        let ev = client.read_crypto(Level::Initial, &sh).unwrap();
        assert_eq!(ev, vec![TlsEvent::KeysReady(Level::Handshake)]);
        let ev = client.read_crypto(Level::Handshake, &flight).unwrap();
        assert!(ev.contains(&TlsEvent::KeysReady(Level::Application)));
        assert!(ev.contains(&TlsEvent::HandshakeComplete));
        let client_fin = client.take_output(Level::Handshake).unwrap();
        let ev = server.read_crypto(Level::Handshake, &client_fin).unwrap();
        assert!(ev.contains(&TlsEvent::HandshakeComplete));
        (client, server)
    }

    /// Runs a ticket-issuing full handshake and returns the minted
    /// ticket plus the server config that issued it.
    fn prime_ticket(resumption: ServerResumption) -> (SessionTicket, ServerConfig) {
        let server_cfg = ServerConfig {
            cert_preprovisioned: true,
            resumption,
            ..ServerConfig::default()
        };
        let mut client = TlsSession::client(ClientConfig::full());
        let mut server = TlsSession::server(server_cfg.clone());
        client.start();
        let (cev, _) = pump(&mut client, &mut server);
        let ticket = cev
            .into_iter()
            .find_map(|e| match e {
                TlsEvent::TicketIssued(t) => Some(t),
                _ => None,
            })
            .expect("ticket issued");
        (ticket, server_cfg)
    }

    #[test]
    fn full_handshake_small_cert() {
        let (client, server) = run_handshake(CERT_SMALL, false);
        assert!(client.is_complete());
        assert!(server.is_complete());
        assert!(!client.is_resumed() && !server.is_resumed());
    }

    #[test]
    fn full_handshake_large_cert() {
        let (client, server) = run_handshake(CERT_LARGE, false);
        assert!(client.is_complete());
        assert!(server.is_complete());
    }

    #[test]
    fn preprovisioned_cert_skips_need_certificate() {
        let (client, server) = run_handshake(CERT_SMALL, true);
        assert!(client.is_complete());
        assert!(server.is_complete());
    }

    #[test]
    fn both_sides_derive_identical_keys() {
        let (client, server) = run_handshake(CERT_SMALL, false);
        assert_eq!(client.keys(Level::Handshake), server.keys(Level::Handshake));
        assert_eq!(
            client.keys(Level::Application),
            server.keys(Level::Application)
        );
    }

    #[test]
    fn server_flight_size_scales_with_cert() {
        let mut client = TlsSession::client(ClientConfig::full());
        client.start();
        let ch = client.take_output(Level::Initial).unwrap();

        let mut small = TlsSession::server(ServerConfig {
            cert_len: CERT_SMALL,
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        small.read_crypto(Level::Initial, &ch).unwrap();
        let small_len = small.pending_output(Level::Handshake);

        let mut large = TlsSession::server(ServerConfig {
            cert_len: CERT_LARGE,
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        large.read_crypto(Level::Initial, &ch).unwrap();
        let large_len = large.pending_output(Level::Handshake);

        assert_eq!(large_len - small_len, CERT_LARGE - CERT_SMALL);
    }

    #[test]
    fn fragmented_delivery_still_completes() {
        let mut client = TlsSession::client(ClientConfig::full());
        let mut server = TlsSession::server(ServerConfig {
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        client.start();
        let ch = client.take_output(Level::Initial).unwrap();
        // Deliver CH one byte at a time.
        for b in ch.iter() {
            server.read_crypto(Level::Initial, &[*b]).unwrap();
        }
        let sh = server.take_output(Level::Initial).unwrap();
        let flight = server.take_output(Level::Handshake).unwrap();
        client.read_crypto(Level::Initial, &sh).unwrap();
        // Deliver the handshake flight in 100-byte chunks.
        for chunk in flight.chunks(100) {
            client.read_crypto(Level::Handshake, chunk).unwrap();
        }
        assert!(client.is_complete());
    }

    #[test]
    fn out_of_order_message_rejected() {
        let mut client = TlsSession::client(ClientConfig::full());
        client.start();
        // Server Finished before ServerHello is a protocol violation.
        let fin = HandshakeMessage::finished([0; 32]);
        let mut enc = BytesMut::new();
        fin.encode(&mut enc);
        assert!(client.read_crypto(Level::Initial, &enc).is_err());
    }

    #[test]
    fn retry_resets_and_requeues_client_hello() {
        let mut client = TlsSession::client(ClientConfig::full());
        client.start();
        let ch1 = client.take_output(Level::Initial).unwrap();
        client.reset_for_retry();
        let ch2 = client.take_output(Level::Initial).unwrap();
        assert_eq!(ch1, ch2);
    }

    #[test]
    fn provide_certificate_is_noop_before_client_hello() {
        let mut server = TlsSession::server(ServerConfig::default());
        assert!(server.provide_certificate().is_empty());
        assert_eq!(server.pending_output(Level::Initial), 0);
    }

    // ------------------------------------------------------------------
    // Resumption
    // ------------------------------------------------------------------

    #[test]
    fn ticket_issued_after_full_handshake() {
        let (ticket, _) = prime_ticket(ServerResumption::accepting(7200));
        assert_eq!(ticket.lifetime_secs, 7200);
        assert!(ticket.early_data_allowed);
        // The NST rides at the Application level, sized per the constant.
        let nst = HandshakeMessage::new_session_ticket(7200, true, &ticket.ticket);
        assert_eq!(nst.wire_len(), NEW_SESSION_TICKET_LEN);
    }

    #[test]
    fn no_ticket_when_issuance_disabled() {
        let mut client = TlsSession::client(ClientConfig::full());
        let mut server = TlsSession::server(ServerConfig {
            cert_preprovisioned: true,
            ..ServerConfig::default()
        });
        client.start();
        let (cev, _) = pump(&mut client, &mut server);
        assert!(client.is_complete());
        assert!(!cev.iter().any(|e| matches!(e, TlsEvent::TicketIssued(_))));
        assert_eq!(server.pending_output(Level::Application), 0);
    }

    #[test]
    fn resumed_handshake_skips_certificate_and_need_certificate() {
        let (ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        // Resumed connection against a *non-preprovisioned* server: a full
        // handshake would raise NeedCertificate; the resumed one must not.
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            ..ClientConfig::full()
        });
        let mut server = TlsSession::server(ServerConfig {
            cert_preprovisioned: false,
            ..server_cfg
        });
        client.start();
        let (cev, sev) = pump(&mut client, &mut server);
        assert!(client.is_complete() && server.is_complete());
        assert!(client.is_resumed() && server.is_resumed());
        assert!(!sev.iter().any(|e| matches!(e, TlsEvent::NeedCertificate)));
        assert!(cev.contains(&TlsEvent::ResumptionAccepted));
        assert_eq!(
            client.keys(Level::Application),
            server.keys(Level::Application)
        );
    }

    #[test]
    fn overlap_key_resumes_retired_key_falls_back() {
        // A ticket minted under the *previous* epoch's key: accepted while
        // that key sits in the overlap window, full handshake once the
        // window drops it (the rotating-server behaviour the testbed's
        // key schedule drives).
        let (ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        let old_key = server_cfg.ticket_key;
        let rotated = |accept: Vec<u64>| ServerConfig {
            cert_preprovisioned: true,
            ticket_key: old_key ^ 0xD00D,
            accept_ticket_keys: accept,
            ..server_cfg.clone()
        };
        let run = |cfg: ServerConfig| {
            let mut client = TlsSession::client(ClientConfig {
                ticket: Some(ticket.clone()),
                ..ClientConfig::full()
            });
            let mut server = TlsSession::server(cfg);
            client.start();
            pump(&mut client, &mut server);
            server.is_resumed()
        };
        assert!(run(rotated(vec![old_key])), "overlap window resumes");
        assert!(!run(rotated(vec![old_key ^ 1])), "retired key falls back");
        assert!(!run(rotated(Vec::new())), "empty window falls back");
    }

    #[test]
    fn resumed_flight_is_much_smaller_than_full() {
        let (ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        let flight_len = |ticket: Option<SessionTicket>| {
            let mut client = TlsSession::client(ClientConfig {
                ticket,
                ..ClientConfig::full()
            });
            let mut server = TlsSession::server(ServerConfig {
                cert_preprovisioned: true,
                ..server_cfg.clone()
            });
            client.start();
            let ch = client.take_output(Level::Initial).unwrap();
            server.read_crypto(Level::Initial, &ch).unwrap();
            server.pending_output(Level::Handshake)
        };
        let full = flight_len(None);
        let resumed = flight_len(Some(ticket));
        // The certificate + CertificateVerify flight disappears.
        assert_eq!(full - resumed, CERT_SMALL + 268);
    }

    #[test]
    fn early_data_keys_agree_when_accepted() {
        let (ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            early_data: true,
            ..ClientConfig::full()
        });
        let mut server = TlsSession::server(server_cfg);
        client.start();
        // Client early keys exist before any server byte.
        let client_early = client.early_keys().cloned().expect("client early keys");
        let (cev, sev) = pump(&mut client, &mut server);
        assert!(cev.contains(&TlsEvent::EarlyDataAccepted));
        assert!(sev.contains(&TlsEvent::EarlyDataAccepted));
        assert_eq!(client.early_data_accepted(), Some(true));
        assert_eq!(server.early_data_accepted(), Some(true));
        assert_eq!(server.early_keys(), Some(&client_early));
    }

    #[test]
    fn early_data_rejected_by_policy() {
        let (ticket, mut server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        server_cfg.resumption = ServerResumption::rejecting_early_data(7200);
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            early_data: true,
            ..ClientConfig::full()
        });
        let mut server = TlsSession::server(server_cfg);
        client.start();
        let (cev, sev) = pump(&mut client, &mut server);
        assert!(client.is_complete() && client.is_resumed());
        assert!(cev.contains(&TlsEvent::EarlyDataRejected));
        assert!(sev.contains(&TlsEvent::EarlyDataRejected));
        assert_eq!(client.early_data_accepted(), Some(false));
        assert!(server.early_keys().is_none());
    }

    #[test]
    fn no_early_offer_under_a_ticket_without_early_support() {
        // RFC 8446 §4.2.10: the client must not offer early data under a
        // ticket whose issuer did not advertise it.
        let (ticket, server_cfg) = prime_ticket(ServerResumption {
            advertise_early_data: false,
            ..ServerResumption::accepting(7200)
        });
        assert!(!ticket.early_data_allowed);
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            early_data: true,
            ..ClientConfig::full()
        });
        client.start();
        assert!(client.early_keys().is_none(), "no offer ⇒ no early keys");
        let mut server = TlsSession::server(server_cfg);
        let (cev, sev) = pump(&mut client, &mut server);
        assert!(client.is_resumed() && server.is_resumed());
        assert_eq!(client.early_data_accepted(), None, "never offered");
        assert_eq!(server.early_data_accepted(), None);
        assert!(!cev
            .iter()
            .any(|e| matches!(e, TlsEvent::EarlyDataAccepted | TlsEvent::EarlyDataRejected)));
        let _ = sev;
    }

    #[test]
    fn server_records_early_reject_on_psk_fallback() {
        // A corrupt ticket kills the PSK *and* its early-data offer; the
        // server must record the rejection symmetrically with the client.
        let (mut ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        ticket.ticket[5] ^= 0x80;
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            early_data: true,
            ..ClientConfig::full()
        });
        let mut server = TlsSession::server(ServerConfig {
            cert_preprovisioned: true,
            ..server_cfg
        });
        client.start();
        let (_, sev) = pump(&mut client, &mut server);
        assert!(!server.is_resumed());
        assert_eq!(server.early_data_accepted(), Some(false));
        assert!(sev.contains(&TlsEvent::EarlyDataRejected));
    }

    #[test]
    fn invalid_ticket_falls_back_to_full_handshake() {
        let (mut ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        ticket.ticket[0] ^= 0xFF; // corrupt: fails the authenticity tag
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            early_data: true,
            ..ClientConfig::full()
        });
        let mut server = TlsSession::server(ServerConfig {
            cert_preprovisioned: true,
            ..server_cfg
        });
        client.start();
        let (cev, _) = pump(&mut client, &mut server);
        assert!(client.is_complete() && server.is_complete());
        assert!(!client.is_resumed() && !server.is_resumed());
        assert!(cev.contains(&TlsEvent::EarlyDataRejected));
        assert_eq!(client.early_data_accepted(), Some(false));
    }

    #[test]
    fn ticket_minting_is_a_pure_function_of_the_handshake() {
        let (a, _) = prime_ticket(ServerResumption::accepting(3600));
        let (b, _) = prime_ticket(ServerResumption::accepting(3600));
        assert_eq!(a, b, "same handshake bytes ⇒ same ticket");
    }

    #[test]
    fn resumed_handshake_reissues_tickets() {
        let (ticket, server_cfg) = prime_ticket(ServerResumption::accepting(7200));
        let mut client = TlsSession::client(ClientConfig {
            ticket: Some(ticket),
            ..ClientConfig::full()
        });
        let mut server = TlsSession::server(server_cfg);
        client.start();
        let (cev, _) = pump(&mut client, &mut server);
        let fresh: Vec<_> = cev
            .iter()
            .filter(|e| matches!(e, TlsEvent::TicketIssued(_)))
            .collect();
        assert_eq!(fresh.len(), 1, "resumed handshakes mint fresh tickets");
    }
}
