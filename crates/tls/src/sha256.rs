//! SHA-256 and HMAC-SHA256, implemented locally.
//!
//! The reproduction needs a deterministic hash for its toy TLS key schedule
//! and packet authentication tags. Implementing FIPS 180-4 SHA-256 here
//! (~120 lines) avoids pulling a cryptography dependency into an offline
//! build; the NIST test vectors below pin correctness.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len += data.len() as u64;
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Length goes directly into the buffer tail to avoid recounting.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
        self.h[5] = self.h[5].wrapping_add(f);
        self.h[6] = self.h[6].wrapping_add(g);
        self.h[7] = self.h[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract (RFC 5869): PRK = HMAC(salt, ikm).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// Single-block HKDF-Expand with an info label (32 bytes of output, which
/// is all the toy key schedule ever needs).
pub fn hkdf_expand_label(prk: &[u8; DIGEST_LEN], label: &str) -> [u8; DIGEST_LEN] {
    let mut msg = Vec::with_capacity(label.len() + 1);
    msg.extend_from_slice(label.as_bytes());
    msg.push(0x01);
    hmac_sha256(prk, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bit_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn rfc4231_hmac_case_1() {
        let key = [0x0b; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_hmac_case_2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_hmac_long_key() {
        // Case 6: 131-byte key (hashed down).
        let key = [0xaa; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hkdf_deterministic_and_label_sensitive() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let a = hkdf_expand_label(&prk, "client in");
        let b = hkdf_expand_label(&prk, "server in");
        let a2 = hkdf_expand_label(&prk, "client in");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
