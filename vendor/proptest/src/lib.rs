//! A minimal, API-compatible subset of the `proptest` crate.
//!
//! This workspace builds offline, so the slice of proptest the test
//! suites rely on is reimplemented here: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` header), `prop_assert!`/
//! `prop_assert_eq!`, range and `any::<T>()` strategies,
//! `collection::vec`, and `sample::select`. Inputs are drawn from a
//! deterministic per-case RNG — no shrinking, which keeps the stub tiny
//! while preserving the property-checking semantics the tests need.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// Everything the test suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each generated test runs `ProptestConfig::cases` deterministic cases;
/// a failing case panics with its case number so the run is reproducible.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@internal ($config) $($rest)*);
    };

    (@internal ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(__case as u64);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        ::std::panic!("proptest case {}/{} failed: {}", __case, __config.cases, __e);
                    }
                }
            }
        )+
    };

    ($($rest:tt)*) => {
        $crate::proptest!(@internal ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (must run inside a `proptest!` body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
}
