//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for drawing values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                (self.start as u64 + rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start() as u64, *self.end() as u64);
                assert!(start <= end, "empty range strategy");
                let span = end - start + 1;
                (start + rng.below(span)) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// Draws an unconstrained value of `T` (`any::<bool>()`, `any::<u8>()`, ...).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),+) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `Just`: always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::deterministic(2);
        let draws: Vec<bool> = (0..100).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
