//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks uniformly from a fixed set of options.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Draws one of `options` uniformly; panics on an empty set.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_yields_options() {
        let strat = select(vec![1u64, 9, 20, 100]);
        let mut rng = TestRng::deterministic(4);
        for _ in 0..100 {
            assert!([1, 9, 20, 100].contains(&strat.generate(&mut rng)));
        }
    }
}
