//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Draws vectors whose elements come from `element` and whose length is
/// uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_length_in_range() {
        let strat = vec(any::<u8>(), 1..50);
        let mut rng = TestRng::deterministic(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..50).contains(&v.len()));
        }
    }
}
