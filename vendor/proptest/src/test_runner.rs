//! Deterministic case runner plumbing: RNG, config, and failure type.

use std::fmt;

/// Per-`proptest!` block configuration (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for struct-update compatibility; shrinking is not
    /// implemented in this stub, so the value is ignored.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // Match real proptest's default so suites written against it
            // keep their intended coverage.
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (not used by the stub's strategies, kept
    /// for API compatibility).
    Reject(String),
}

impl TestCaseError {
    /// Property violation with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Input rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// SplitMix64: tiny, deterministic, and plenty for drawing test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream depends only on the case index.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15u64.wrapping_add(case.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-input quality.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::deterministic(7);
        let mut b = TestRng::deterministic(7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic(0);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
