//! A minimal, API-compatible subset of the `criterion` crate.
//!
//! This workspace builds offline, so the benchmarking entry points the
//! `microbench` target uses are reimplemented here. Statistical rigor is
//! intentionally traded away: each benchmark is timed over a fixed batch
//! of iterations and the mean per-iteration wall time is printed. Good
//! enough to spot order-of-magnitude regressions; not a criterion
//! replacement.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u32 = 3;
const TIMED_BATCHES: u32 = 7;

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Times `f` (which drives a [`Bencher`]) and prints the result.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            per_iter: Vec::new(),
        };
        f(&mut b);
        let mean = if b.per_iter.is_empty() {
            Duration::ZERO
        } else {
            b.per_iter.iter().sum::<Duration>() / b.per_iter.len() as u32
        };
        println!(
            "bench {id:<40} {mean:>12.3?}/iter ({} batches)",
            b.per_iter.len()
        );
        self
    }
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording mean per-iteration time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        // Scale the batch so fast routines still get a measurable window.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..TIMED_BATCHES {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.per_iter.push(start.elapsed() / batch);
        }
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a set of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u32;
        Criterion::default().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
