//! A minimal, API-compatible subset of the `bytes` crate.
//!
//! This workspace builds in an offline environment with no registry
//! access, so the handful of `bytes` types the codebase relies on are
//! reimplemented here. `Bytes` is a cheaply cloneable, sliceable view
//! into shared immutable storage; `BytesMut` is a growable buffer that
//! freezes into `Bytes`. The `Buf`/`BufMut` traits cover exactly the
//! big-endian accessor surface the wire codecs use.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer: a `(shared storage, range)`
/// pair, so `clone`/`slice`/`split_to` never copy payload bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a `Bytes` view of a static slice (copies in this stub —
    /// correctness over the real crate's zero-copy trick).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Creates a `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Splits off and returns the bytes from `at` onward, truncating `self`.
    pub fn split_off(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable mutable byte buffer, freezable into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Resizes, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Truncates to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Splits off and returns the entire filled buffer, leaving `self`
    /// empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            buf: std::mem::take(&mut self.buf),
        }
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, tail),
        }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { buf: v.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

/// Read access to a contiguous cursor of bytes (big-endian accessors).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, panicking on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes into a fresh [`Bytes`] (copies in this stub).
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write access to a growable byte sink (big-endian accessors).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(b.slice(1..).as_ref(), &[4, 5]);
    }

    #[test]
    fn bytesmut_round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32(0xDEADBEEF);
        m.extend_from_slice(b"xy");
        let frozen = m.freeze();
        let mut cursor = &frozen[..];
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xDEADBEEF);
        assert_eq!(cursor, b"xy");
    }

    #[test]
    fn buf_for_bytes_advances() {
        let mut b = Bytes::from(vec![0u8, 1, 2, 3]);
        assert_eq!(b.get_u16(), 1);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u16(), 0x0203);
        assert!(!b.has_remaining());
    }
}
