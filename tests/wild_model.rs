//! Integration tests for the macroscopic model: the scan pipeline must
//! re-derive the paper's Table 1 / §4.3 observations from the synthetic
//! population, and the longitudinal cache model must explain the
//! coalescing rates.

use reacked_quicer::sim::SimRng;
use reacked_quicer::wild::longitudinal::{median_of, LongitudinalStudy, StudyDomain};
use reacked_quicer::wild::{scan, Cdn, Population, Vantage, VANTAGES};

fn standard_scan() -> reacked_quicer::wild::ScanReport {
    let pop = Population::synthesize(60_000, &mut SimRng::new(0xCAFE));
    scan(&pop, 2, 0xD00D)
}

#[test]
fn table1_all_rows_in_band() {
    let report = standard_scan();
    // (cdn, expected share, tolerance)
    let expect = [
        (Cdn::Akamai, 0.322, 0.15),
        (Cdn::Amazon, 0.41, 0.12),
        (Cdn::Cloudflare, 0.999, 0.01),
        (Cdn::Fastly, 0.0, 0.02),
        (Cdn::Google, 0.115, 0.08),
        (Cdn::Meta, 0.0, 0.05),
        (Cdn::Microsoft, 0.0, 0.05),
        (Cdn::Others, 0.215, 0.05),
    ];
    for (cdn, share, tol) in expect {
        let row = report.rows.iter().find(|r| r.cdn == cdn).unwrap();
        assert!(
            (row.iack_share - share).abs() <= tol,
            "{cdn:?}: measured {:.3}, paper {share}",
            row.iack_share
        );
    }
}

#[test]
fn google_iack_share_depends_on_vantage() {
    // Appendix G: Google's IACK deployments are only significantly
    // reachable from Sao Paulo, producing Table 1's 11.5% variation.
    let report = standard_scan();
    let google = report.rows.iter().find(|r| r.cdn == Cdn::Google).unwrap();
    assert!(
        google.max_variation > 0.05,
        "variation {:.3}",
        google.max_variation
    );
}

#[test]
fn fig8_cdn_ordering() {
    let report = standard_scan();
    let median_gap = |cdn| {
        report
            .iack_gap_median(Vantage::SaoPaulo, cdn)
            .unwrap_or(f64::NAN)
    };
    let cf = median_gap(Cdn::Cloudflare);
    let amazon = median_gap(Cdn::Amazon);
    let akamai = median_gap(Cdn::Akamai);
    // Paper §4.3 ordering: Cloudflare 3.2 < Amazon 6.4 < Akamai 20.9.
    assert!(cf < amazon, "cloudflare {cf} < amazon {amazon}");
    assert!(amazon < akamai, "amazon {amazon} < akamai {akamai}");
    assert!((cf - 3.2).abs() < 2.0, "cloudflare median {cf}");
}

#[test]
fn fig10_coalesced_ack_delays_exceed_rtt_for_meta() {
    let report = standard_scan();
    let (coalesced, _) = report.rtt_minus_ack_delay(Cdn::Meta);
    assert!(coalesced.n > 0);
    // Paper: 100% of Meta's coalesced ACK–SH ack delays exceed the RTT.
    let exceed = coalesced.exceed_rtt_share().unwrap();
    assert!(exceed > 0.8, "meta exceed share {exceed}");
}

#[test]
fn fig14_cloudflare_similar_across_vantages() {
    let report = standard_scan();
    let medians: Vec<f64> = VANTAGES
        .iter()
        .map(|v| report.iack_gap_median(*v, Cdn::Cloudflare).unwrap())
        .collect();
    let max = medians.iter().cloned().fold(f64::MIN, f64::max);
    let min = medians.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 2.5, "medians too spread: {medians:?}");
}

#[test]
fn scan_report_identical_across_thread_counts() {
    // The PR's core guarantee at integration level: a full scan report
    // — Table 1 rows *and* every figure aggregate — is byte-identical
    // whether the domain loops run on one worker or four.
    use reacked_quicer::testbed::SweepRunner;
    let pop = Population::synthesize(30_000, &mut SimRng::new(0xCAFE));
    let seq = reacked_quicer::wild::scan_with(&pop, 2, 0xD00D, &SweepRunner::new(1));
    let par = reacked_quicer::wild::scan_with(&pop, 2, 0xD00D, &SweepRunner::new(4));
    assert_eq!(seq, par);
}

#[test]
fn longitudinal_coalescing_rates_match_paper() {
    // §4.3 coalescing observations, reproduced via the cache model.
    let own_slow = StudyDomain {
        name: "own-1pm".into(),
        probe_rate_per_min: 1.0,
        background_rate_per_s: 0.0,
    };
    let own_fast = StudyDomain {
        name: "own-60pm".into(),
        probe_rate_per_min: 60.0,
        background_rate_per_s: 0.0,
    };
    let discord = StudyDomain {
        name: "discord.com".into(),
        probe_rate_per_min: 1.0,
        background_rate_per_s: 32.0,
    };
    assert!(own_slow.cache_hit_probability() < 0.01); // 99.9% IACK
    let fast = own_fast.cache_hit_probability();
    assert!(
        (0.03..0.15).contains(&fast),
        "60/min → ~7.5% coalesced, got {fast}"
    );
    assert!(discord.cache_hit_probability() > 0.85); // 91.9% coalesced
}

#[test]
fn longitudinal_diurnal_gap_and_median() {
    let study = LongitudinalStudy::cloudflare(
        Vantage::SaoPaulo,
        StudyDomain {
            name: "own".into(),
            probe_rate_per_min: 1.0,
            background_rate_per_s: 0.0,
        },
    );
    let obs = study.run(7 * 24 * 60, 99);
    // Median IACK→SH gap ≈ 2.1 ms (§4.3).
    let gap = |pred: &dyn Fn(u64) -> bool| {
        median_of(obs.iter().filter(|o| pred(o.minute)).filter_map(|o| {
            match (o.time_to_ack_ms, o.time_to_sh_ms) {
                (Some(a), Some(s)) => Some(s - a),
                _ => None,
            }
        }))
        .unwrap()
    };
    let all = gap(&|_| true);
    assert!((1.5..3.5).contains(&all), "median gap {all}");
    // Day-time (11:00–17:00) gaps exceed night-time (23:00–05:00) gaps.
    let day = gap(&|m| (11..17).contains(&((m / 60) % 24)));
    let night = gap(&|m| !(5..23).contains(&((m / 60) % 24)));
    assert!(day > night, "day {day} vs night {night}");
}

#[test]
fn asn_inference_round_trips_via_population() {
    let pop = Population::synthesize(5_000, &mut SimRng::new(5));
    for domain in pop.domains.iter().filter(|d| d.cdn.is_some()) {
        let cdn = domain.cdn.unwrap();
        for asn in cdn.as_numbers() {
            assert_eq!(Cdn::from_asn(*asn), cdn);
        }
    }
}
