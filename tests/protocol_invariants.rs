//! Property-based and invariant tests across the protocol stack: whatever
//! the scenario parameters, certain protocol rules must always hold.

use proptest::prelude::*;
use reacked_quicer::prelude::*;
use reacked_quicer::qlog::{EventData, SpaceName};
use reacked_quicer::testbed::run_scenario_with_trace;

fn scenario(
    client_idx: usize,
    iack: bool,
    rtt_ms: u64,
    cert_delay_ms: u64,
    big_cert: bool,
    loss_kind: u8,
    seed: u64,
) -> Scenario {
    let clients = all_clients();
    let client = clients[client_idx % clients.len()].clone();
    let mode = if iack {
        ServerAckMode::InstantAck { pad_to_mtu: false }
    } else {
        ServerAckMode::WaitForCertificate
    };
    let mut sc = Scenario::base(client, mode, HttpVersion::H1);
    sc.rtt = SimDuration::from_millis(rtt_ms);
    sc.cert_delay = SimDuration::from_millis(cert_delay_ms);
    if big_cert {
        sc.cert_len = reacked_quicer::tls::CERT_LARGE;
    }
    sc.loss = match loss_kind % 3 {
        0 => LossSpec::None,
        1 => LossSpec::ServerFlightTail,
        _ => LossSpec::SecondClientFlight,
    };
    sc.seed = seed;
    sc.capture_payloads = true;
    sc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every scenario either completes or aborts via the modeled quiche
    /// quirk — the state machines never wedge silently.
    #[test]
    fn every_scenario_terminates(
        client_idx in 0usize..8,
        iack in any::<bool>(),
        rtt_ms in prop::sample::select(vec![1u64, 9, 20, 100]),
        cert_delay_ms in prop::sample::select(vec![0u64, 4, 25, 200]),
        big_cert in any::<bool>(),
        loss_kind in 0u8..3,
        seed in 0u64..1000,
    ) {
        let sc = scenario(client_idx, iack, rtt_ms, cert_delay_ms, big_cert, loss_kind, seed);
        let (res, trace) = run_scenario_with_trace(&sc);
        prop_assert!(
            res.completed || res.aborted,
            "{}: neither completed nor aborted", res.label
        );

        // Anti-amplification: before the client's second flight arrives,
        // the server never sends more than 3x what it received. Checked
        // globally per-datagram through the trace: cumulative server bytes
        // at any instant <= 3x cumulative client bytes delivered by then.
        let mut sent_by_client: u64 = 0;
        let mut sent_by_server: u64 = 0;
        let mut validated = false;
        for d in &trace.datagrams {
            if d.from.index() == 1 {
                sent_by_client += d.size as u64;
                // A client datagram carrying a Handshake packet validates
                // the address (stop checking afterwards).
                if let Some(p) = &d.payload {
                    if let Ok(info) = reacked_quicer::wire::classify_datagram(p, 8) {
                        if info.has_space(reacked_quicer::wire::PacketNumberSpace::Handshake) {
                            validated = true;
                        }
                    }
                }
            } else {
                sent_by_server += d.size as u64;
                if !validated {
                    prop_assert!(
                        sent_by_server <= 3 * sent_by_client,
                        "{}: server sent {sent_by_server} > 3x{sent_by_client}",
                        res.label
                    );
                }
            }
        }

        // All client datagrams containing Initial packets are >= 1200 B.
        for d in trace.datagrams.iter().filter(|d| d.from.index() == 1) {
            if let Some(p) = &d.payload {
                if let Ok(info) = reacked_quicer::wire::classify_datagram(p, 8) {
                    if info.has_space(reacked_quicer::wire::PacketNumberSpace::Initial) {
                        prop_assert!(
                            d.size >= 1200,
                            "{}: client Initial datagram only {} B",
                            res.label,
                            d.size
                        );
                    }
                }
            }
        }
    }

    /// Packet numbers are strictly monotonic per space in each endpoint's
    /// qlog, and the first PTO never undercuts 3x the true minimum RTT
    /// minus granularity slack.
    #[test]
    fn qlog_consistency(
        client_idx in 0usize..8,
        iack in any::<bool>(),
        cert_delay_ms in prop::sample::select(vec![0u64, 25]),
        seed in 0u64..500,
    ) {
        let sc = scenario(client_idx, iack, 9, cert_delay_ms, false, 0, seed);
        let (res, _) = run_scenario_with_trace(&sc);
        prop_assert!(res.completed);
        for log in [&res.client_log, &res.server_log] {
            let mut last_pn: std::collections::BTreeMap<SpaceName, u64> = Default::default();
            for ev in &log.events {
                if let EventData::PacketSent { space, pn, .. } = &ev.data {
                    if let Some(prev) = last_pn.get(space) {
                        prop_assert!(pn > prev, "{}: pn regression in {space:?}", log.vantage);
                    }
                    last_pn.insert(*space, *pn);
                }
            }
        }
        if let Some(pto) = res.first_pto_ms {
            // 3 x RTT is the sample-based floor; the go-x-net quirk can
            // only inflate it.
            prop_assert!(pto >= 3.0 * 9.0 - 1.0, "first PTO {pto:.2} below 3xRTT");
        }
    }

    /// Determinism: identical scenarios produce identical outcomes.
    #[test]
    fn scenario_determinism(
        client_idx in 0usize..8,
        iack in any::<bool>(),
        loss_kind in 0u8..3,
        seed in 0u64..100,
    ) {
        let sc = scenario(client_idx, iack, 9, 4, false, loss_kind, seed);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        prop_assert_eq!(a.ttfb_ms, b.ttfb_ms);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.client_rtt_samples, b.client_rtt_samples);
    }
}

/// The Retry handshake extension (paper §5 generalization): a server
/// demanding address validation still completes, with one extra RTT.
#[test]
fn retry_handshake_completes_with_extra_round_trip() {
    use reacked_quicer::quic::{Connection, EndpointConfig};
    use reacked_quicer::sim::SimTime;
    use reacked_quicer::wire::{ConnectionId, PlainPacket};

    let mut client = Connection::client(EndpointConfig::rfc_default(), 7, false);
    client.send_stream_data(0, b"GET / HTTP/1.1\r\n\r\n", true);
    let mut server: Option<Connection> = None;
    let mut now = SimTime::ZERO;
    let mut retries_seen = 0;
    for _ in 0..100 {
        while let Some(d) = client.poll_transmit(now) {
            let srv = server.get_or_insert_with(|| {
                let dcid = PlainPacket::decode(&d, 8)
                    .map(|(p, _, _)| p.header.dcid)
                    .unwrap();
                let mut s = Connection::server(EndpointConfig::rfc_default(), 8, dcid);
                s.use_retry = true;
                s
            });
            srv.handle_datagram(now, &d);
        }
        if let Some(srv) = server.as_mut() {
            while let Some(ev) = srv.poll_event() {
                if matches!(ev, reacked_quicer::quic::ConnEvent::CertificateNeeded) {
                    srv.certificate_ready(now);
                }
            }
            while let Some(d) = srv.poll_transmit(now) {
                if let Ok((pkt, _, _)) = PlainPacket::decode(&d, 8) {
                    if pkt.header.ty == reacked_quicer::wire::PacketType::Retry {
                        retries_seen += 1;
                    }
                }
                client.handle_datagram(now, &d);
            }
        }
        while client.poll_event().is_some() {}
        if client.is_confirmed() {
            break;
        }
        now = now + SimDuration::from_millis(1);
        if client.poll_timeout().map(|t| t <= now).unwrap_or(false) {
            client.handle_timeout(now);
        }
        if let Some(srv) = server.as_mut() {
            if srv.poll_timeout().map(|t| t <= now).unwrap_or(false) {
                srv.handle_timeout(now);
            }
        }
    }
    assert_eq!(retries_seen, 1, "exactly one Retry round trip");
    assert!(client.is_established(), "handshake completes after Retry");
    let srv = server.unwrap();
    assert!(srv.is_established());
    // The token validated the address: no amplification blocking occurred.
    assert_eq!(srv.amplification_budget(), usize::MAX);
    let _ = ConnectionId::EMPTY;
}
