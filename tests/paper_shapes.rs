//! Cross-crate integration tests asserting the *shape* of every major
//! paper result: who wins, in which scenario, by roughly what factor.

use reacked_quicer::prelude::*;
use reacked_quicer::{compare_modes, CompareOptions};

const IACK: ServerAckMode = ServerAckMode::InstantAck { pad_to_mtu: false };

/// Figure 2/§4.1: the first PTO improves by 3x the certificate-store
/// delay, independent of the RTT.
#[test]
fn first_pto_improvement_is_three_delta_t_across_rtts() {
    for rtt_ms in [9u64, 25, 100] {
        let c = compare_modes(
            "quic-go",
            CompareOptions {
                rtt_ms,
                cert_delay_ms: 10,
                ..CompareOptions::default()
            },
        );
        let delta = c.wfc.first_pto_ms.unwrap() - c.iack.first_pto_ms.unwrap();
        assert!(
            (delta - 30.0).abs() < 8.0,
            "rtt {rtt_ms}: expected ~30 ms first-PTO improvement, got {delta:.1}"
        );
    }
}

/// Figure 5: with the large certificate and Δt = 200 ms the server blocks
/// on the amplification limit and IACK improves the TTFB for clients that
/// probe (neqo, ngtcp2); picoquic sees no benefit.
#[test]
fn amplification_blocked_scenario_favours_iack_for_probing_clients() {
    for name in ["neqo", "ngtcp2"] {
        let c = compare_modes(
            name,
            CompareOptions {
                cert_len: reacked_quicer::tls::CERT_LARGE,
                cert_delay_ms: 200,
                ..CompareOptions::default()
            },
        );
        assert!(c.iack.server_amp_blocked || c.wfc.server_amp_blocked);
        let d = c.ttfb_delta_ms().unwrap();
        assert!(d < -4.0, "{name}: IACK must win by ~1 RTT, delta {d:.1}");
    }
    let pico = compare_modes(
        "picoquic",
        CompareOptions {
            cert_len: reacked_quicer::tls::CERT_LARGE,
            cert_delay_ms: 200,
            ..CompareOptions::default()
        },
    );
    let d = pico.ttfb_delta_ms().unwrap();
    assert!(
        d.abs() < 4.0,
        "picoquic: equal performance expected, delta {d:.1}"
    );
}

/// Figure 5 caption: HTTP/3's TTFB (control-stream SETTINGS) is one RTT
/// below HTTP/1.1's (response body).
#[test]
fn http3_ttfb_one_rtt_below_http11() {
    for rtt_ms in [9u64, 20] {
        let h1 = compare_modes(
            "quic-go",
            CompareOptions {
                rtt_ms,
                ..CompareOptions::default()
            },
        );
        let h3 = compare_modes(
            "quic-go",
            CompareOptions {
                rtt_ms,
                http: HttpVersion::H3,
                ..CompareOptions::default()
            },
        );
        let gap = h1.wfc.ttfb_ms.unwrap() - h3.wfc.ttfb_ms.unwrap();
        assert!(
            (gap - rtt_ms as f64).abs() < 3.0,
            "rtt {rtt_ms}: H1-H3 TTFB gap {gap:.1} should be ~1 RTT"
        );
    }
}

/// Figure 6: server-flight tail loss — WFC beats IACK by roughly the
/// server's default PTO (200 ms for the quic-go testbed server).
#[test]
fn server_flight_loss_penalizes_iack_by_server_default_pto() {
    let c = compare_modes(
        "quic-go",
        CompareOptions {
            loss: LossSpec::ServerFlightTail,
            ..CompareOptions::default()
        },
    );
    let d = c.ttfb_delta_ms().unwrap();
    assert!(
        (120.0..260.0).contains(&d),
        "IACK penalty {d:.1} should be in the order of the 200 ms server PTO"
    );
}

/// §4.2: quiche's duplicate-CID-retirement abort fires exactly in the
/// Figure 6 IACK + HTTP/1.1 case and nowhere else.
#[test]
fn quiche_aborts_only_under_iack_with_server_flight_loss_http1() {
    let c = compare_modes(
        "quiche",
        CompareOptions {
            loss: LossSpec::ServerFlightTail,
            ..CompareOptions::default()
        },
    );
    assert!(c.wfc.completed, "quiche WFC completes");
    assert!(
        c.iack.aborted,
        "quiche IACK aborts (duplicate CID retirement)"
    );
    // HTTP/3 does not hit the bug (§4.2).
    let h3 = compare_modes(
        "quiche",
        CompareOptions {
            loss: LossSpec::ServerFlightTail,
            http: HttpVersion::H3,
            ..CompareOptions::default()
        },
    );
    assert!(h3.iack.completed, "quiche HTTP/3 behaves like the others");
}

/// Figure 7: second-client-flight loss — IACK wins for every client
/// except picoquic (parity).
#[test]
fn client_flight_loss_favours_iack_except_picoquic() {
    for name in ["aioquic", "neqo", "ngtcp2", "quic-go", "quiche", "mvfst"] {
        let c = compare_modes(
            name,
            CompareOptions {
                loss: LossSpec::SecondClientFlight,
                cert_delay_ms: 4,
                ..CompareOptions::default()
            },
        );
        let d = c.ttfb_delta_ms().unwrap();
        assert!(d < -3.0, "{name}: IACK should win, delta {d:.1}");
    }
    let pico = compare_modes(
        "picoquic",
        CompareOptions {
            loss: LossSpec::SecondClientFlight,
            cert_delay_ms: 4,
            ..CompareOptions::default()
        },
    );
    let d = pico.ttfb_delta_ms().unwrap();
    assert!(d.abs() < 2.0, "picoquic parity expected, delta {d:.1}");
}

/// Figure 7/§4.2: the improvement is absolute (~constant ms), so the
/// relative gain shrinks as the RTT grows.
#[test]
fn client_flight_loss_improvement_is_absolute_not_relative() {
    let mut improvements = Vec::new();
    for rtt_ms in [9u64, 100] {
        let c = compare_modes(
            "quic-go",
            CompareOptions {
                rtt_ms,
                loss: LossSpec::SecondClientFlight,
                cert_delay_ms: 4,
                ..CompareOptions::default()
            },
        );
        improvements.push(-c.ttfb_delta_ms().unwrap());
    }
    let (small_rtt, large_rtt) = (improvements[0], improvements[1]);
    assert!(small_rtt > 0.0 && large_rtt > 0.0);
    // Same order of magnitude in absolute terms.
    assert!(
        large_rtt < small_rtt * 4.0 + 20.0,
        "improvement should not scale with RTT: {small_rtt:.1} vs {large_rtt:.1}"
    );
}

/// Table 2 cross-validation: the guideline matrix predicts the measured
/// winner.
#[test]
fn guideline_matrix_matches_testbed() {
    use reacked_quicer::analysis::guidelines::ExpectedLoss;
    use reacked_quicer::analysis::{recommend, Advice, DeploymentScenario};

    let cases = [
        (
            LossSpec::ServerFlightTail,
            ExpectedLoss::ServerFlightTail,
            5u64,
        ),
        (
            LossSpec::SecondClientFlight,
            ExpectedLoss::SecondClientFlight,
            5,
        ),
    ];
    for (loss, expected_loss, dt) in cases {
        let c = compare_modes(
            "quic-go",
            CompareOptions {
                loss,
                cert_delay_ms: dt,
                ..CompareOptions::default()
            },
        );
        let measured = if c.ttfb_delta_ms().unwrap() < 0.0 {
            Advice::Iack
        } else {
            Advice::Wfc
        };
        let predicted = recommend(&DeploymentScenario {
            cert_exceeds_amplification: false,
            rtt_ms: 9.0,
            delta_t_ms: dt as f64,
            loss: expected_loss,
        });
        assert_eq!(measured, predicted, "loss {loss:?}");
    }
}

/// §5 improvement: retransmitting the ClientHello on PTO repairs the
/// server-flight loss roughly a server PTO sooner than PING probes.
#[test]
fn client_hello_retransmit_policy_beats_ping_probes() {
    let client = client_by_name("quic-go").unwrap();
    let run = |policy| {
        let mut sc = Scenario::base(client.clone(), IACK, HttpVersion::H1);
        sc.loss = LossSpec::ServerFlightTail;
        sc.probe_policy_override = Some(policy);
        run_scenario(&sc)
    };
    let ping = run(ProbePolicy::Ping).ttfb_ms.unwrap();
    let rech = run(ProbePolicy::RetransmitOldest).ttfb_ms.unwrap();
    assert!(
        rech + 100.0 < ping,
        "re-CH ({rech:.1}) should save ~a server PTO vs PING ({ping:.1})"
    );
}

/// §5 padded-IACK cost: padding the instant ACK consumes amplification
/// budget and never helps when the certificate already exceeds the limit.
#[test]
fn padded_iack_never_faster_when_amplification_blocked() {
    let client = client_by_name("neqo").unwrap();
    let run = |pad| {
        let mut sc = Scenario::base(
            client.clone(),
            ServerAckMode::InstantAck { pad_to_mtu: pad },
            HttpVersion::H1,
        );
        sc.cert_len = reacked_quicer::tls::CERT_LARGE;
        sc.cert_delay = SimDuration::from_millis(200);
        run_scenario(&sc)
    };
    let plain = run(false).ttfb_ms.unwrap();
    let padded = run(true).ttfb_ms.unwrap();
    assert!(
        padded >= plain - 1.0,
        "padding must not speed things up: {plain:.1} vs {padded:.1}"
    );
}

/// go-x-net's erratic behaviour: across seeds, some runs carry the bogus
/// 90 ms smoothed-RTT initialization (first PTO far above 3 x RTT).
#[test]
fn go_x_net_mis_initializes_in_part_of_runs() {
    let client = client_by_name("go-x-net").unwrap();
    let mut buggy = 0;
    let mut clean = 0;
    for seed in 0..30 {
        let mut sc = Scenario::base(client.clone(), IACK, HttpVersion::H1);
        sc.cert_delay = SimDuration::from_millis(4);
        sc.seed = seed;
        let res = run_scenario(&sc);
        let pto = res.first_pto_ms.unwrap();
        if pto > 100.0 {
            buggy += 1;
        } else {
            clean += 1;
        }
    }
    assert!(
        buggy >= 3,
        "expected some mis-initialized runs, got {buggy}"
    );
    assert!(clean >= 10, "expected mostly clean runs, got {clean}");
}
