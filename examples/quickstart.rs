//! Quickstart: compare wait-for-certificate and instant ACK for one
//! client/server pair and print what changed.
//!
//! Run with: `cargo run --example quickstart`

use reacked_quicer::prelude::*;
use reacked_quicer::{compare_modes, CompareOptions};

fn main() {
    // The paper's Figure 1 setup: a CDN frontend 9 ms from the client,
    // 25 ms from its certificate store.
    let opts = CompareOptions {
        rtt_ms: 9,
        cert_delay_ms: 25,
        ..CompareOptions::default()
    };
    let c = compare_modes("quic-go", opts);

    println!("== ReACKed QUICer quickstart ==");
    println!("client quic-go, RTT 9 ms, certificate-store delay Δt = 25 ms, 10 KB response\n");
    let row = |name: &str, r: &reacked_quicer::testbed::RunResult| {
        println!(
            "{name:<6} handshake {:>7.1} ms   TTFB {:>7.1} ms   first smoothed RTT {:>6.1} ms   first PTO {:>6.1} ms",
            r.handshake_ms.unwrap_or(f64::NAN),
            r.ttfb_ms.unwrap_or(f64::NAN),
            r.first_srtt_ms.unwrap_or(f64::NAN),
            r.first_pto_ms.unwrap_or(f64::NAN),
        );
    };
    row("WFC", &c.wfc);
    row("IACK", &c.iack);

    let dpto = c.wfc.first_pto_ms.unwrap() - c.iack.first_pto_ms.unwrap();
    println!(
        "\nThe instant ACK keeps the first RTT sample clean: the first probe timeout drops by \
         {dpto:.1} ms — almost exactly 3 x Δt = {:.0} ms, the paper's headline arithmetic.",
        3.0 * 25.0
    );

    // The analytical model agrees:
    let reduction = first_pto_reduction_rtt(9.0, 25.0);
    println!(
        "Closed-form check: reduction = 3Δt/RTT = {reduction:.2} RTT units; spurious retransmits \
         at this operating point: {}",
        spurious_retransmit(9.0, 25.0)
    );
}
