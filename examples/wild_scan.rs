//! Macroscopic scan: probe a synthetic Tranco-like population and derive
//! the per-CDN instant-ACK deployment table, like the paper's Table 1.
//!
//! Run with: `cargo run --example wild_scan`

use reacked_quicer::prelude::*;
use reacked_quicer::sim::SimRng;
use reacked_quicer::wild::Cdn;

fn main() {
    println!("== Synthetic Tranco scan (paper Table 1 pipeline) ==\n");
    let mut rng = SimRng::new(2024);
    let population = Population::synthesize(50_000, &mut rng);
    let report = scan(&population, 2, 7);

    println!(
        "{:<12} {:>8} {:>14} {:>14}",
        "CDN", "domains", "IACK (max) [%]", "variation [%]"
    );
    for row in &report.rows {
        println!(
            "{:<12} {:>8} {:>14.1} {:>14.1}",
            row.cdn.name(),
            row.domains,
            row.iack_share * 100.0,
            row.max_variation * 100.0
        );
    }

    // The ACK→SH gap distribution for Cloudflare from Sao Paulo.
    if let Some(median) = report.iack_gap_median(Vantage::SaoPaulo, Cdn::Cloudflare) {
        println!(
            "\nCloudflare IACK→ServerHello gap from Sao Paulo: median {:.2} ms over {} handshakes \
             (paper: 3.2 ms across vantage points)",
            median,
            report.handshakes(Vantage::SaoPaulo, Cdn::Cloudflare)
        );
    }

    // And the longitudinal cache story behind coalesced ACK–SH responses.
    use reacked_quicer::wild::longitudinal::StudyDomain;
    println!("\nFrontend-cache model (coalescing probability by popularity):");
    for (name, probe_rate, background) in [
        ("own domain @ 1/min", 1.0, 0.0),
        ("own domain @ 60/min", 60.0, 0.0),
        ("tinyurl.com-like", 1.0, 2.5),
        ("discord.com-like", 1.0, 32.0),
    ] {
        let d = StudyDomain {
            name: name.into(),
            probe_rate_per_min: probe_rate,
            background_rate_per_s: background,
        };
        println!(
            "   {name:<22} → {:5.1}% coalesced ACK–SH",
            d.cache_hit_probability() * 100.0
        );
    }
}
