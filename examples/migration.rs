//! Connection migration: surviving the network changing under you.
//!
//! Flips the route under an in-flight download — deliberately (the
//! client is told, rotates its connection ID, and validates the new
//! path with PATH_CHALLENGE) or as a silent NAT rebind (the server
//! discovers the move from the arrival path) — and shows what the flip
//! costs, per RFC 9000 §9.
//!
//! Run with: `cargo run --example migration`

use reacked_quicer::prelude::*;
use reacked_quicer::testbed::MigrationSpec;

fn download() -> Scenario {
    let client = client_by_name("quic-go").unwrap();
    let mut sc = Scenario::base(client, ServerAckMode::WaitForCertificate, HttpVersion::H1);
    sc.file_size = 512 * 1024;
    sc
}

fn report(label: &str, sc: &Scenario) {
    let res = run_scenario(sc);
    println!(
        "{label:<28} ttfb {:>7.1} ms   response {:>7.1} ms   goodput {:>6.2} Mbit/s   migrated: {}",
        res.ttfb_ms.unwrap_or(f64::NAN),
        res.response_ms.unwrap_or(f64::NAN),
        res.goodput_mbps.unwrap_or(f64::NAN),
        res.migrated,
    );
}

fn main() {
    println!("== A 512 KiB download, and the route moves at t = 100 ms ==\n");

    let at = SimDuration::from_millis(100);
    let new_rtt = SimDuration::from_millis(30);

    // The control: nobody moves. `MigrationSpec::none()` is guaranteed
    // byte-for-byte identical to a scenario that never heard of
    // migration — the axis is free when unused.
    let mut none = download();
    none.migration = MigrationSpec::none();
    report("stationary", &none);

    // Deliberate migration: the OS signals the route change, the client
    // rotates its DCID to the next one in the announced pool and probes
    // the new path with PATH_CHALLENGE before trusting it. Both ends
    // reset their congestion controller and RTT estimator for the new
    // path (RFC 9000 §9.4), so the tail of the download pays a fresh
    // slow start on top of the higher RTT.
    let mut deliberate = download();
    deliberate.migration = MigrationSpec::deliberate_at(at, new_rtt);
    report("deliberate migration", &deliberate);

    // NAT rebind: nobody is told. The server notices the same
    // connection arriving from a new path, revalidates it server-side,
    // and the client adopts the path from the first datagram that
    // arrives on it — one flight later than the deliberate case.
    let mut rebind = download();
    rebind.migration = MigrationSpec::rebind_at(at, new_rtt);
    report("NAT rebind", &rebind);

    // Migration composes with the impairment engine: the new path can
    // be lossy, jittery, or reordering like any other link.
    let mut lossy = download();
    lossy.migration = MigrationSpec::deliberate_at(at, new_rtt)
        .with_impairment(ImpairmentSpec::none().with_iid_loss(0.02));
    report("migration onto 2% loss", &lossy);

    println!(
        "\nTTFB predates the flip, so it never moves; the response tail pays the new\n\
         path's RTT plus the per-path congestion reset. A rebind discovers the move\n\
         one flight later than a deliberate migration. Sweep the full grid with:\n\
         cargo run --release --bin exp_migration_sweep"
    );
}
