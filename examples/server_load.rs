//! The many-connection server engine: one shared event loop, N arriving
//! clients, one server with a concurrency limit and a rotating ticket-key
//! schedule.
//!
//! Run with: `cargo run --example server_load`

use reacked_quicer::prelude::*;
use reacked_quicer::testbed::{
    run_server_load, run_server_load_sharded, ArrivalProcess, ClassMix, ConnFate, ServerLoadSpec,
};

fn main() {
    let client = client_by_name("quic-go").unwrap();
    let iack = ServerAckMode::InstantAck { pad_to_mtu: false };

    println!("== What does a handshake cost the *server*? ==\n");

    // A server-load spec is a template scenario plus an arrival process;
    // everything — arrival times, per-connection handshake classes,
    // impairment draws, synthetic resumption tickets — derives from the
    // scenario seed, so the whole population is exactly reproducible.
    let mut spec = ServerLoadSpec::new(
        Scenario::base(client.clone(), iack, HttpVersion::H1),
        200,
        ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_millis(3),
        },
    );
    // 30% abbreviated handshakes, 20% 0-RTT attempts; a fifth of the
    // population crosses an impaired path.
    spec.mix = Some(ClassMix {
        resumed: 0.3,
        zero_rtt: 0.2,
    });
    spec.impaired = Some((0.2, ImpairmentSpec::none().with_iid_loss(0.02)));

    let run = run_server_load(&spec);
    let a = &run.report.accounting;
    println!(
        "{} arrivals: {} completed, {} failed, {} shed",
        a.arrivals, a.completed, a.failed, a.shed
    );
    println!(
        "handshake CPU: {:.1} full-handshake units ({:.3}/connection)",
        a.cpu_cost,
        a.cpu_cost / a.completed.max(1) as f64
    );
    println!(
        "classes: {} full / {} resumed / {} 0-RTT accepted",
        a.full_handshakes, a.resumed_handshakes, a.zero_rtt_accepted
    );
    println!(
        "queue depth: mean {:.1}, peak {} | TTFB p50 {:.1} ms, p99 {:.1} ms\n",
        a.mean_depth(),
        a.peak_active,
        run.report.ttfb.p50().unwrap_or(0.0),
        run.report.ttfb.p99().unwrap_or(0.0),
    );

    // Per-connection outcomes come back in arrival order; the first few
    // show the class mixture at work.
    println!("first arrivals:");
    for o in run.outcomes.iter().take(5) {
        println!(
            "  #{:<3} t={:>6.1} ms  {:?}/{:?}  ttfb {}",
            o.index,
            o.arrival.as_millis_f64(),
            o.class,
            o.fate,
            o.ttfb_ms
                .map(|v| format!("{v:.1} ms"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // A flash crowd against a finite server: everyone shows up inside
    // 100 ms, the server sheds statelessly beyond 16 active connections.
    println!("\n== Flash crowd vs concurrency limit ==\n");
    let mut crowd = ServerLoadSpec::new(
        Scenario::base(client, iack, HttpVersion::H1),
        200,
        ArrivalProcess::FlashCrowd {
            window: SimDuration::from_millis(100),
        },
    );
    crowd.concurrency_limit = 16;
    let run = run_server_load(&crowd);
    let a = &run.report.accounting;
    let shed_share = 100.0 * a.shed as f64 / a.arrivals as f64;
    println!(
        "{} arrivals in 100 ms, limit 16: {} served, {} shed ({shed_share:.0}%), peak {}",
        a.arrivals, a.completed, a.shed, a.peak_active
    );
    let first_shed = run.outcomes.iter().find(|o| o.fate == ConnFate::Shed);
    if let Some(o) = first_shed {
        println!(
            "first shed arrival: #{} at t = {:.1} ms",
            o.index,
            o.arrival.as_millis_f64()
        );
    }

    // Populations beyond one event loop's comfort shard into fixed-size
    // replica servers over the worker pool; the merged report is
    // byte-identical at any thread count because the shard size — not
    // the thread count — determines the split.
    println!("\n== Sharded: 2000 arrivals over 256-arrival replicas ==\n");
    let mut big = spec.clone();
    big.arrivals = 2000;
    let t1 = run_server_load_sharded(&big, &SweepRunner::new(1), 256);
    let t4 = run_server_load_sharded(&big, &SweepRunner::new(4), 256);
    assert_eq!(t1, t4, "the merged report is thread-count invariant");
    println!(
        "{} arrivals: {} completed, cpu {:.1}, ttfb p50/p99 = {:.1}/{:.1} ms (threads 1 == 4)",
        t1.accounting.arrivals,
        t1.accounting.completed,
        t1.accounting.cpu_cost,
        t1.ttfb.p50().unwrap_or(0.0),
        t1.ttfb.p99().unwrap_or(0.0),
    );
}
