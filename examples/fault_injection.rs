//! Fault injection and graceful degradation: link blackouts, server
//! crash/restart cycles, give-up budgets, reconnect policies, and
//! Retry-based overload admission.
//!
//! Run with: `cargo run --example fault_injection`

use reacked_quicer::prelude::*;
use reacked_quicer::quic::OverloadPolicy;
use reacked_quicer::testbed::{
    run_server_load, ArrivalProcess, FaultSpec, ReconnectPolicy, ServerLoadSpec,
};

fn spec(faults: FaultSpec) -> ServerLoadSpec {
    let client = client_by_name("quic-go").unwrap();
    let mut base = Scenario::base(
        client,
        ServerAckMode::InstantAck { pad_to_mtu: false },
        HttpVersion::H1,
    );
    base.faults = faults;
    let mut spec = ServerLoadSpec::new(
        base,
        200,
        ArrivalProcess::Poisson {
            mean_gap: SimDuration::from_millis(20),
        },
    );
    spec.conn_deadline = SimDuration::from_secs(10);
    spec
}

fn report(label: &str, spec: &ServerLoadSpec) {
    let run = run_server_load(spec);
    let f = &run.report.fates;
    println!(
        "{label:<22} availability {:>5.1}%  fates: {} done / {} retried / {} shed / {} gave-up / {} reset / {} failed  ({} reconnects)",
        100.0 * f.availability(),
        f.completed,
        f.retried_then_accepted,
        f.shed,
        f.gave_up,
        f.reset,
        f.failed,
        run.report.reconnects,
    );
}

fn main() {
    println!("== What breaks, and who recovers? ==\n");

    // Everything hangs off the scenario seed: the fault timeline
    // (blackout windows, crash instants) is drawn from its own derived
    // stream, so adding faults never perturbs the arrival process or
    // the per-connection randomness — and `FaultSpec::none()` is
    // guaranteed byte-for-byte identical to a fault-free run.
    report("healthy", &spec(FaultSpec::none()));

    // Link blackouts: seeded outage windows that drop every datagram.
    // Clients ride them out on PTO retransmits (slower, not dead).
    let mut blackout = FaultSpec::none();
    blackout.blackout = Some((SimDuration::from_millis(400), SimDuration::from_millis(250)));
    report("blackout, no coping", &spec(blackout));

    // Server crashes wipe every in-flight connection; orphaned clients
    // get a stateless-reset-style signal instead of a silent timeout.
    // Without a reconnect policy those connections are simply lost.
    let mut crash = FaultSpec::none();
    crash.crash_every = Some(SimDuration::from_millis(700));
    report("crashes, no coping", &spec(crash));

    // Give the clients a coping budget: give up after 3 s of no
    // progress, then reconnect with jittered exponential backoff (up
    // to 3 attempts). Availability recovers; the cost shows up in the
    // time-to-success tail instead.
    let mut coped = crash;
    coped.blackout = blackout.blackout;
    coped.give_up_after = Some(SimDuration::from_secs(3));
    coped.reconnect = Some(ReconnectPolicy::default());
    report("blackout+crash, coping", &spec(coped));

    // Overload is a fault too: a flash crowd against a finite server.
    // Silent shedding loses the excess outright; Retry-based deferral
    // reuses the address-validation handshake as an admission valve —
    // deferred clients come back with the server's token and get a
    // slot once one frees up.
    println!("\n== Flash crowd (200 arrivals in 250 ms, limit 32) ==\n");
    for policy in [
        OverloadPolicy::Shed,
        OverloadPolicy::RetryDefer,
        OverloadPolicy::CloseWithBackoff,
    ] {
        let mut s = spec(FaultSpec::none());
        s.process = ArrivalProcess::FlashCrowd {
            window: SimDuration::from_millis(250),
        };
        s.concurrency_limit = 32;
        s.overload = policy;
        report(policy.label(), &s);
    }

    println!(
        "\nEvery arrival resolves to exactly one fate; availability is the served fraction\n\
         (done + retried). The fault timeline, give-up deadlines, and reconnect jitter are\n\
         all pure functions of the scenario seed — rerun this and the numbers won't move."
    );
}
