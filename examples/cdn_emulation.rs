//! CDN emulation: the paper's Figure 5 anti-amplification scenario for a
//! handful of clients, with a qlog-style timeline for one run.
//!
//! Run with: `cargo run --example cdn_emulation`

use reacked_quicer::prelude::*;
use reacked_quicer::qlog::EventData;

fn main() {
    println!("== Anti-amplification CDN scenario (paper Figure 5) ==");
    println!("10 KB over HTTP/3, 9 ms RTT, 5113 B certificate, Δt = 200 ms, no loss\n");

    for name in ["neqo", "ngtcp2", "mvfst", "picoquic"] {
        let client = client_by_name(name).unwrap();
        let make = |mode| {
            let mut sc = Scenario::base(client.clone(), mode, HttpVersion::H3);
            sc.cert_len = reacked_quicer::tls::CERT_LARGE;
            sc.cert_delay = SimDuration::from_millis(200);
            sc
        };
        let wfc = run_scenario(&make(ServerAckMode::WaitForCertificate));
        let iack = run_scenario(&make(ServerAckMode::InstantAck { pad_to_mtu: false }));
        println!(
            "{name:<10} WFC TTFB {:>7.1} ms | IACK TTFB {:>7.1} ms | amplification-blocked: wfc={} iack={}",
            wfc.ttfb_ms.unwrap_or(f64::NAN),
            iack.ttfb_ms.unwrap_or(f64::NAN),
            wfc.server_amp_blocked,
            iack.server_amp_blocked,
        );
    }

    // Timeline of the IACK handshake for neqo.
    println!("\nneqo + IACK event timeline (client qlog):");
    let client = client_by_name("neqo").unwrap();
    let mut sc = Scenario::base(
        client,
        ServerAckMode::InstantAck { pad_to_mtu: false },
        HttpVersion::H3,
    );
    sc.cert_len = reacked_quicer::tls::CERT_LARGE;
    sc.cert_delay = SimDuration::from_millis(200);
    let res = run_scenario(&sc);
    for ev in res.client_log.events.iter().take(24) {
        let line = match &ev.data {
            EventData::PacketSent {
                space, pn, size, ..
            } => {
                format!("TX {:?} pn={pn} ({size} B)", space)
            }
            EventData::PacketReceived {
                space, pn, size, ..
            } => {
                format!("RX {:?} pn={pn} ({size} B)", space)
            }
            EventData::InstantAck { .. } => "observed instant ACK".to_string(),
            EventData::MetricsUpdated {
                smoothed_rtt_ms, ..
            } => {
                format!("RTT sample → smoothed {smoothed_rtt_ms:.2} ms")
            }
            EventData::PtoExpired { space, pto_count } => {
                format!("PTO expired ({:?}, count {pto_count}) → probe", space)
            }
            EventData::KeyInstalled { space } => format!("keys installed: {:?}", space),
            EventData::HandshakeComplete => "handshake complete".to_string(),
            other => format!("{other:?}"),
        };
        println!("  t={:8.2} ms  {line}", ev.time_ms);
    }
}
