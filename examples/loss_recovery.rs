//! Loss recovery: the paper's two opposing loss scenarios (Figures 6/7)
//! plus the §5 probe-policy improvement, side by side.
//!
//! Run with: `cargo run --example loss_recovery`

use reacked_quicer::prelude::*;

fn main() {
    let client = client_by_name("quic-go").unwrap();

    println!("== When does the instant ACK help, and when does it hurt? ==\n");

    // Scenario A: the rest of the first server flight is lost (Fig. 6).
    // The IACK is not ACK-eliciting, so the server never gets an RTT
    // sample and must wait for its full default PTO before resending.
    let run = |mode, loss, policy: Option<ProbePolicy>| {
        let mut sc = Scenario::base(client.clone(), mode, HttpVersion::H1);
        sc.loss = loss;
        sc.cert_delay = SimDuration::from_millis(4);
        sc.probe_policy_override = policy;
        run_scenario(&sc)
    };

    let wfc = run(
        ServerAckMode::WaitForCertificate,
        LossSpec::ServerFlightTail,
        None,
    );
    let iack = run(
        ServerAckMode::InstantAck { pad_to_mtu: false },
        LossSpec::ServerFlightTail,
        None,
    );
    println!("A. First server flight lost except datagram 1 (paper Fig. 6):");
    println!(
        "   WFC  TTFB {:>7.1} ms   (server learned the RTT from its coalesced ACK+SH)",
        wfc.ttfb_ms.unwrap()
    );
    println!(
        "   IACK TTFB {:>7.1} ms   (server had no RTT sample -> full default PTO)",
        iack.ttfb_ms.unwrap()
    );

    // Scenario B: the second client flight is lost (Fig. 7). Now the
    // *client's* PTO matters, and the IACK made it 3xΔt smaller.
    let wfc = run(
        ServerAckMode::WaitForCertificate,
        LossSpec::SecondClientFlight,
        None,
    );
    let iack = run(
        ServerAckMode::InstantAck { pad_to_mtu: false },
        LossSpec::SecondClientFlight,
        None,
    );
    println!("\nB. Entire second client flight lost (paper Fig. 7):");
    println!(
        "   WFC  TTFB {:>7.1} ms   (client PTO inflated by 3xΔt)",
        wfc.ttfb_ms.unwrap()
    );
    println!(
        "   IACK TTFB {:>7.1} ms   (client resends sooner)",
        iack.ttfb_ms.unwrap()
    );

    // Scenario C: the §5 improvement — retransmit the ClientHello on PTO
    // instead of a PING, so the probe itself repairs the server's loss.
    let ping = run(
        ServerAckMode::InstantAck { pad_to_mtu: false },
        LossSpec::ServerFlightTail,
        Some(ProbePolicy::Ping),
    );
    let rech = run(
        ServerAckMode::InstantAck { pad_to_mtu: false },
        LossSpec::ServerFlightTail,
        Some(ProbePolicy::RetransmitOldest),
    );
    println!("\nC. Scenario A with the paper's suggested client fix (§5):");
    println!(
        "   PING probes              TTFB {:>7.1} ms",
        ping.ttfb_ms.unwrap()
    );
    println!(
        "   ClientHello retransmit   TTFB {:>7.1} ms",
        rech.ttfb_ms.unwrap()
    );

    println!("\nThe Table 2 guidance captures exactly this asymmetry:");
    for (label, loss) in [
        (
            "server-flight loss",
            reacked_quicer::analysis::guidelines::ExpectedLoss::ServerFlightTail,
        ),
        (
            "client-flight loss",
            reacked_quicer::analysis::guidelines::ExpectedLoss::SecondClientFlight,
        ),
    ] {
        let advice = recommend(&reacked_quicer::analysis::DeploymentScenario {
            cert_exceeds_amplification: false,
            rtt_ms: 9.0,
            delta_t_ms: 4.0,
            loss,
        });
        println!("   {label:<22} → {advice:?}");
    }
}
