//! Stochastic impairments and scenario matrices: sweep WFC vs IACK over
//! random loss, bursty loss, reordering, duplication, and jitter in one
//! cross-product run.
//!
//! Run with: `cargo run --example impairment_matrix`

use reacked_quicer::prelude::*;
use reacked_quicer::testbed::{median, ScenarioMatrix, SweepRunner};

fn main() {
    let client = client_by_name("quic-go").unwrap();

    println!("== Does the instant ACK survive a noisy path? ==\n");

    // A channel spec is plain data: compose the impairment families you
    // want and hand the spec to `LossSpec::Random`. Every draw comes from
    // the scenario seed, so each cell below is exactly reproducible.
    let clean = ImpairmentSpec::none();
    let losses = [
        LossSpec::Random(clean),
        LossSpec::Random(clean.with_iid_loss(0.03)),
        LossSpec::Random(clean.with_gilbert_elliott(0.02, 0.3, 0.0, 0.9)),
        LossSpec::Random(
            clean
                .with_reordering(0.1, SimDuration::from_millis(4))
                .with_duplication(0.02)
                .with_uniform_jitter(SimDuration::from_millis(3)),
        ),
    ];

    // One matrix = the full cross product; one `run` = one saturated
    // parallel sweep over all cells x repetitions.
    let matrix = ScenarioMatrix::new(Scenario::base(
        client,
        ServerAckMode::WaitForCertificate,
        HttpVersion::H1,
    ))
    .ack_modes(&[
        ServerAckMode::WaitForCertificate,
        ServerAckMode::InstantAck { pad_to_mtu: false },
    ])
    .losses(&losses);

    let reps = 9;
    let cells = matrix.run(&SweepRunner::from_env(), reps);
    println!(
        "{} cells x {reps} reps on {} thread(s)\n",
        matrix.len(),
        SweepRunner::from_env().threads()
    );

    // Cell order is ack-mode-major, so the two halves line up per loss.
    let (wfc_cells, iack_cells) = cells.split_at(losses.len());
    println!("{:<38} {:>10} {:>10} {:>8}", "channel", "WFC", "IACK", "Δ");
    for (w, i) in wfc_cells.iter().zip(iack_cells) {
        let wm = median(&w.ttfbs_ms()).unwrap();
        let im = median(&i.ttfbs_ms()).unwrap();
        println!(
            "{:<38} {wm:>8.1}ms {im:>8.1}ms {:>+7.1}ms",
            format!("{:?}", w.scenario.loss),
            im - wm
        );
    }
    println!("\nmedian TTFB over {reps} seeded repetitions; Δ < 0 means the instant ACK wins.");
}
